package variation

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

// TuneOptions configure the post-silicon tuning loop.
type TuneOptions struct {
	// Sensor estimates the die slowdown (default: exact in-situ monitor
	// with 1% resolution).
	Sensor Sensor
	// GuardbandPct is added to the sensed slowdown before allocation
	// (sensor error headroom).
	GuardbandPct float64
	// MaxClusters / MaxBiasPairs bound the clustering (defaults 3 / 2).
	MaxClusters  int
	MaxBiasPairs int
	// MaxIters bounds the escalate-and-retry loop (default 5).
	MaxIters int
	// SlackTolPct accepts dies within this fraction above nominal Dcrit
	// (default 0.001).
	SlackTolPct float64
	// Workers bounds concurrent die tunings in YieldStudy (0 = one per
	// CPU, 1 = sequential). Per-die seeds keep the statistics independent
	// of the worker count.
	Workers int
	// Solver picks the allocation engine (nil = the registered two-pass
	// heuristic). A shared Solver must be safe for concurrent Solve calls
	// on distinct Instances — the core built-ins are — since YieldStudy
	// hands the same value to every worker.
	Solver core.Solver
	// BatchWidth sets how many dies YieldStream's population kernels
	// process per batch (0 = defaultBatchWidth). Any width — including 1 —
	// yields byte-identical statistics and per-die results: the batch
	// kernels preserve every die's float operation sequence exactly, so
	// the width is purely a locality knob.
	BatchWidth int
	// TargetCI opts into adaptive termination: when positive, YieldStream
	// stops after the die whose accumulation brings the 95% Wilson score
	// interval on the recovered-yield fraction (MetAfter/Dies) to a
	// half-width at or below TargetCI (a fraction; 0.01 = ±1 percentage
	// point of yield). Dies accumulate in die order regardless, so a
	// truncated study is byte-identical to a fixed-count study of the die
	// count actually run (reported in YieldStats.Dies). Zero (the
	// default) disables it: all nDies always run.
	TargetCI float64
	// SolveCache shares first-iteration allocation solves across workers,
	// streams and requests (a flow.Prefix carries one per placement); nil
	// keeps solves memoized per worker only. The cache must be built over
	// the same Allocator the tuning runs on.
	SolveCache *core.SolveCache
}

func (o *TuneOptions) setDefaults() {
	if o.Sensor == nil {
		o.Sensor = InSituMonitor{ResolutionPct: 0.01}
	}
	if o.MaxClusters == 0 {
		o.MaxClusters = 3
	}
	if o.MaxBiasPairs == 0 {
		o.MaxBiasPairs = 2
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 5
	}
	if o.SlackTolPct <= 0 {
		o.SlackTolPct = 0.001
	}
}

// TuneResult reports one die's tuning outcome.
type TuneResult struct {
	// BetaActual is the die's true slowdown; BetaSensed what the sensor
	// saw (before guardband).
	BetaActual, BetaSensed float64
	// Solution is the last clustering actually applied to the die (nil
	// when no bias was needed or no allocation ever succeeded).
	Solution *core.Solution
	// Met reports whether the tuned die meets nominal timing.
	Met bool
	// Reason explains a failed tuning.
	Reason string
	// DcritBeforePS/DcritAfterPS are the die critical delays. When
	// Solution is non-nil, DcritAfterPS and LeakAfterNW always describe
	// the die under that solution, even if a later escalation attempt
	// failed to allocate.
	DcritBeforePS, DcritAfterPS float64
	// LeakBeforeNW/LeakAfterNW are the die leakages.
	LeakBeforeNW, LeakAfterNW float64
	// Iters counts allocation attempts.
	Iters int
}

// Tuner is the per-worker mutable state of a tuning loop: a Retimer (shared
// sta.Analyzer, private timing buffers) beside an allocation Instance
// (shared core.Allocator, private constraint and solver buffers) and a
// LeakModel (shared tables via Clone, private per-die factors). Like the
// Retimer it must not be used from more than one goroutine at a time;
// YieldStudy creates one per worker via flow.MapWith.
type Tuner struct {
	rt   *Retimer
	al   *core.Allocator
	inst *core.Instance
	leak *LeakModel

	// sols memoizes allocation outcomes per (beta, clusters, pairs): the
	// clustering problem is built on the *nominal* timing and a target
	// slowdown — it does not depend on the die — and the default
	// monitor quantizes sensed targets, so a population keeps re-solving
	// a handful of identical instances. Only first-iteration targets are
	// inserted (escalated ones are continuous per-die floats that would
	// never hit again) and insertion stops at maxSolMemo entries — the
	// memo is a bounded cache, not a log, and a worker that lives for a
	// million-die stream holds O(maxSolMemo) solutions. Solvers are
	// deterministic, so a cached solution is the one re-solving would
	// return; the memo is reset when the caller switches solvers.
	sols       map[solKey]*solEntry
	solsSolver core.Solver
}

// maxSolMemo bounds the Tuner's allocation memo. The default monitor's 1%
// quantization yields a few dozen distinct first-iteration targets on any
// realistic population; everything beyond that is a continuous escalation
// target with no reuse value.
const maxSolMemo = 64

type solKey struct {
	beta            float64
	clusters, pairs int
}

type solEntry struct {
	sol *core.Solution // detached clone; nil when the solve failed
	err error
}

// solve returns the allocation for a target slowdown through the Tuner's
// memo, materializing and solving through the shared Allocator on a miss.
// memoize marks a reusable (first-iteration, monitor-quantized) target:
// escalated targets are continuous per-die floats that would never hit
// again, so they are looked up but never inserted — one-off keys cannot
// crowd the bounded memo out of its reusable entries. When a shared
// SolveCache is supplied, memoizable misses route through it — the first
// worker of the whole process pays the materialize-and-solve, every later
// worker, stream and request gets the entry — and the shared solution is
// inserted into the local memo so subsequent hits in this worker skip the
// cache lock entirely. solveErr is the graceful beyond-compensation-range
// outcome (cached — it is as deterministic as a solution); err is a
// structural materialization failure (fatal, never cached). The returned
// Solution is owned by the Tuner or the shared cache (never the caller):
// callers clone before retaining, exactly as they must for Instance-owned
// solutions.
func (tn *Tuner) solve(opts core.Options, solver core.Solver, memoize bool, shared *core.SolveCache) (sol *core.Solution, solveErr, err error) {
	if tn.sols == nil || tn.solsSolver != solver {
		tn.sols = make(map[solKey]*solEntry)
		tn.solsSolver = solver
	}
	key := solKey{beta: opts.Beta, clusters: opts.MaxClusters, pairs: opts.MaxBiasPairs}
	if e, ok := tn.sols[key]; ok {
		return e.sol, e.err, nil
	}
	if memoize && shared != nil {
		s, inst, serr, err := shared.Solve(opts, solver, tn.inst)
		if err != nil {
			return nil, nil, err
		}
		tn.inst = inst
		if len(tn.sols) < maxSolMemo {
			// The cached Solution is immutable and outlives the worker, so
			// the local memo shares it instead of cloning.
			tn.sols[key] = &solEntry{sol: s, err: serr}
		}
		return s, serr, nil
	}
	inst, err := tn.al.At(opts, tn.inst)
	if err != nil {
		return nil, nil, err
	}
	tn.inst = inst
	s, serr := inst.Solve(solver)
	if !memoize || len(tn.sols) >= maxSolMemo {
		// Hand the scratch-owned solution straight through. Skipping the
		// insert only costs a potential future re-solve; correctness is
		// unaffected since cached and fresh solves are identical.
		return s, serr, nil
	}
	e := &solEntry{err: serr}
	if s != nil {
		e.sol = s.Clone() // s lives in the Instance scratch
	}
	tn.sols[key] = e
	return e.sol, e.err, nil
}

// NewTuner bundles a Retimer and a (possibly shared) Allocator with private
// allocation scratch.
func NewTuner(rt *Retimer, al *core.Allocator) *Tuner {
	return &Tuner{rt: rt, al: al}
}

// Retimer returns the tuner's re-timing engine.
func (tn *Tuner) Retimer() *Retimer { return tn.rt }

// Allocator returns the shared allocation engine.
func (tn *Tuner) Allocator() *core.Allocator { return tn.al }

// leakModel returns the tuner's leakage engine for proc, building (or
// rebuilding, when the process changes — e.g. the aging controller's
// per-checkpoint temperature derates) it on demand. Population loops skip
// the build by seeding tn.leak from a shared model's Clone.
func (tn *Tuner) leakModel(proc *tech.Process) *LeakModel {
	if tn.leak == nil || tn.leak.proc != proc {
		tn.leak = NewLeakModel(tn.rt.Placement(), proc)
	}
	return tn.leak
}

// Tune runs the paper's post-silicon flow on one die: sense the slowdown,
// allocate clustered FBB for it on the design-time (nominal) timing model,
// verify against the die's actual variation, and escalate the target
// slowdown if the non-uniform variation defeats the uniform-beta model.
// It is the one-shot form of TuneOn; loops over many dies of one placement
// should build an Analyzer and an Allocator once and a Tuner per worker.
func Tune(pl *place.Placement, nom *sta.Timing, die *Die, proc *tech.Process, opts TuneOptions) (*TuneResult, error) {
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		return nil, err
	}
	al, err := core.NewAllocator(pl, nom)
	if err != nil {
		return nil, err
	}
	return TuneOn(NewTuner(NewRetimer(an), al), nom, die, proc, opts)
}

// TuneOn is Tune on a reusable Tuner: the die re-timings run through the
// shared Analyzer's Dcrit-only fast path into reused buffers (only the
// critical delay of a die corner is ever read — the sensors walk the
// *nominal* path set), each allocation attempt re-materializes the
// clustering problem through the shared Allocator instead of a fresh
// BuildProblem, and the per-die leakages are one exp pass plus
// multiply-add sweeps through the Tuner's LeakModel — with the default
// heuristic solver the whole escalation loop allocates almost nothing
// beyond the solutions it reports (the ILP and local-search solvers buy
// quality with their own working memory).
func TuneOn(tn *Tuner, nom *sta.Timing, die *Die, proc *tech.Process, opts TuneOptions) (*TuneResult, error) {
	if nom == nil || nom.Light {
		return nil, errors.New("variation: nominal timing must be a full (path-extracting) analysis")
	}
	if opts.SolveCache != nil && opts.SolveCache.Allocator() != tn.al {
		return nil, errors.New("variation: TuneOptions.SolveCache built over a different Allocator")
	}
	opts.setDefaults()
	dieTm, err := tn.rt.TimeLight(die)
	if err != nil {
		return nil, err
	}
	lm := tn.leakModel(proc)
	lm.SetDie(die)
	// dieTm is the Retimer's reused buffer: every scalar needed after the
	// next re-timing must be extracted now.
	dieDcrit := dieTm.DcritPS
	res := &TuneResult{
		BetaActual:    dieDcrit/nom.DcritPS - 1,
		DcritBeforePS: dieDcrit,
		LeakBeforeNW:  lm.LeakageNW(nil),
	}
	limit := nom.DcritPS * (1 + opts.SlackTolPct)

	res.BetaSensed = opts.Sensor.MeasureBeta(nom, dieTm, die.Seed)
	target := res.BetaSensed + opts.GuardbandPct
	// Memoizing an allocation only pays when the target can recur, which
	// takes a quantizing sensor: a noisy or exact reading is a continuous
	// per-die float, and inserting it would just fill the bounded memo
	// with dead entries.
	mon, isMonitor := opts.Sensor.(InSituMonitor)
	memoizable := isMonitor && mon.ResolutionPct > 0
	if dieDcrit <= limit && target <= 0 {
		// Fast or nominal die: nothing to do.
		res.Met = true
		res.DcritAfterPS = dieDcrit
		res.LeakAfterNW = res.LeakBeforeNW
		return res, nil
	}
	return tn.tuneTail(res, die, nom.DcritPS, dieDcrit, limit, target, memoizable, proc, opts)
}

// tuneTail is the allocate-verify-escalate loop of TuneOn on a die whose
// head analysis (re-timing, leakage baseline, sensing) is already folded
// into res — the shared slow path of the scalar TuneOn and the batched
// YieldStream, which runs the head through the batch kernels and hands only
// the dies that need bias here. opts must have defaults applied; the float
// operations are exactly TuneOn's.
func (tn *Tuner) tuneTail(res *TuneResult, die *Die, nomDcrit, dieDcrit, limit, target float64, memoizable bool, proc *tech.Process, opts TuneOptions) (*TuneResult, error) {
	lm := tn.leakModel(proc)
	if target <= 0 {
		target = 0.005 // sensor saw nothing but the die misses timing
	}

	for iter := 0; iter < opts.MaxIters; iter++ {
		res.Iters = iter + 1
		sol, solveErr, err := tn.solve(core.Options{
			Beta:         target,
			MaxClusters:  opts.MaxClusters,
			MaxBiasPairs: opts.MaxBiasPairs,
		}, opts.Solver, memoizable && iter == 0, opts.SolveCache)
		if err != nil {
			return nil, err
		}
		if solveErr != nil {
			// Beyond the FBB compensation range. Keep the report
			// internally consistent: when an earlier escalation already
			// applied a solution, Solution/DcritAfterPS/LeakAfterNW
			// still describe that applied state; only a die that never
			// got bias reports its before-tuning figures.
			res.Reason = solveErr.Error()
			if res.Solution == nil {
				res.DcritAfterPS = dieDcrit
				res.LeakAfterNW = res.LeakBeforeNW
			}
			return res, nil
		}
		tuned, err := tn.rt.TimeWithBiasLight(die, proc, sol.Assign)
		if err != nil {
			return nil, err
		}
		// sol lives in the Tuner's memo or the shared cache; detach the
		// copy we report.
		res.Solution = sol.Clone()
		res.DcritAfterPS = tuned.DcritPS
		res.LeakAfterNW = lm.LeakageNW(res.Solution.Assign)
		if tuned.DcritPS <= limit {
			res.Met = true
			return res, nil
		}
		// The uniform-beta model under-estimated this die's worst
		// corner; escalate and retry (a real controller bumps the
		// bias code the same way).
		short := tuned.DcritPS/nomDcrit - 1
		target += short + 0.005
	}
	res.Reason = fmt.Sprintf("not met after %d escalations", opts.MaxIters)
	return res, nil
}

// YieldAccum is the raw, order-dependent accumulator state of a yield
// study: the exact partial sums and counters YieldStream folds dies into, in
// die order, before the final normalization produces a YieldStats. It exists
// so a stream can be *resumed*: a study that died after die k restarts from
// the accumulator state covering dies [0, k) and the suffix accumulation
// performs the identical float operation sequence an unbroken run would —
// the final statistics are byte-identical. The JSON form round-trips every
// float64 exactly (Go's encoder emits the shortest representation that
// parses back to the same bits), so the state survives a wire crossing
// unchanged. Checkpoint states always cover at least one die, which keeps
// WorstBetaPct finite (the fresh accumulator's -Inf sentinel never needs to
// be marshaled).
type YieldAccum struct {
	// Dies counts the dies folded in so far; the state covers dies
	// [0, Dies) of the study.
	Dies int `json:"dies"`
	// MetBefore / MetAfter count dies meeting timing before / after tuning.
	MetBefore int `json:"metBefore"`
	MetAfter  int `json:"metAfter"`
	// SumBetaPct is the running sum of per-die slowdowns (in percent);
	// WorstBetaPct the running maximum.
	SumBetaPct   float64 `json:"sumBetaPct"`
	WorstBetaPct float64 `json:"worstBetaPct"`
	// SumLeak* are the running leakage sums (all dies / all dies after
	// tuning / tuned dies only).
	SumLeakBeforeNW    float64 `json:"sumLeakBeforeNW"`
	SumLeakAfterNW     float64 `json:"sumLeakAfterNW"`
	SumLeakTunedOnlyNW float64 `json:"sumLeakTunedOnlyNW"`
	// TunedDies counts dies that received bias; FailedCompensations dies
	// that missed timing even after tuning.
	TunedDies           int `json:"tunedDies"`
	FailedCompensations int `json:"failedCompensations"`
	// SumIters / SumClusters accumulate tuning effort over tuned dies.
	SumIters    int `json:"sumIters"`
	SumClusters int `json:"sumClusters"`
}

// newYieldAccum returns the fresh (zero-die) accumulator. WorstBetaPct
// starts at -Inf, not zero: an all-fast population's worst slowdown is
// negative, and a zero floor would silently report it as exactly nominal.
func newYieldAccum() YieldAccum {
	return YieldAccum{WorstBetaPct: math.Inf(-1)}
}

// fold accumulates one die's result, in die order. The operations (and
// their order) are the byte-identity contract of resumed streams: a suffix
// folded onto a prior state reproduces an unbroken run exactly.
func (a *YieldAccum) fold(r *TuneResult, limit float64) {
	a.Dies++
	a.SumBetaPct += r.BetaActual * 100
	if r.BetaActual*100 > a.WorstBetaPct {
		a.WorstBetaPct = r.BetaActual * 100
	}
	if r.DcritBeforePS <= limit {
		a.MetBefore++
	}
	if r.Met {
		a.MetAfter++
	}
	a.SumLeakBeforeNW += r.LeakBeforeNW
	a.SumLeakAfterNW += r.LeakAfterNW
	if r.Solution != nil {
		a.TunedDies++
		a.SumLeakTunedOnlyNW += r.LeakAfterNW
		a.SumIters += r.Iters
		a.SumClusters += r.Solution.Clusters
	}
	if !r.Met {
		a.FailedCompensations++
	}
}

// stats normalizes the accumulated sums into the study's YieldStats.
func (a *YieldAccum) stats() *YieldStats {
	st := &YieldStats{
		Dies:                a.Dies,
		MetBefore:           a.MetBefore,
		MetAfter:            a.MetAfter,
		MeanBetaPct:         a.SumBetaPct / float64(a.Dies),
		WorstBetaPct:        a.WorstBetaPct,
		MeanLeakBeforeNW:    a.SumLeakBeforeNW / float64(a.Dies),
		MeanLeakAfterNW:     a.SumLeakAfterNW / float64(a.Dies),
		TunedDies:           a.TunedDies,
		FailedCompensations: a.FailedCompensations,
	}
	if a.TunedDies > 0 {
		st.MeanLeakTunedOnlyNW = a.SumLeakTunedOnlyNW / float64(a.TunedDies)
		st.MeanTuneIters = float64(a.SumIters) / float64(a.TunedDies)
		st.MeanClustersPerTuned = float64(a.SumClusters) / float64(a.TunedDies)
	}
	return st
}

// YieldStats aggregates a Monte-Carlo tuning study.
type YieldStats struct {
	Dies                 int
	MetBefore, MetAfter  int
	MeanBetaPct          float64
	WorstBetaPct         float64
	MeanLeakBeforeNW     float64
	MeanLeakAfterNW      float64
	MeanLeakTunedOnlyNW  float64 // average leakage of dies that got bias
	TunedDies            int
	FailedCompensations  int
	MeanTuneIters        float64
	MeanClustersPerTuned float64
}

// YieldPct returns before/after parametric yield percentages.
func (y *YieldStats) YieldPct() (before, after float64) {
	if y.Dies == 0 {
		return 0, 0
	}
	return 100 * float64(y.MetBefore) / float64(y.Dies),
		100 * float64(y.MetAfter) / float64(y.Dies)
}

// YieldStudy samples nDies from the model, tunes each, and aggregates the
// yield and leakage statistics — the system-level experiment motivating the
// paper ("bring the slow dies back to within the range of acceptable
// specs"). It builds the reusable STA analyzer and allocation engine
// itself; callers that already hold them (e.g. a flow.Prefix) should use
// YieldStudyOn.
func YieldStudy(ctx context.Context, pl *place.Placement, proc *tech.Process, m Model, nDies int, seed int64, opts TuneOptions) (*YieldStats, error) {
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		return nil, err
	}
	nom, err := an.Run(nil, nil)
	if err != nil {
		return nil, err
	}
	al, err := core.NewAllocator(pl, nom)
	if err != nil {
		return nil, err
	}
	return YieldStudyOn(ctx, an, al, nom, proc, m, nDies, seed, opts)
}

// YieldStudyOn runs the Monte-Carlo tuning study over a shared Analyzer,
// a shared Allocator built on its nominal timing, and that timing. Dies are
// tuned concurrently on a flow worker pool (opts.Workers bounds it; default
// one per CPU), each worker carrying a private Tuner — a Retimer over the
// shared Analyzer beside an allocation Instance over the shared Allocator;
// cancelling ctx aborts the study. Per-die seeds are mixed from the die
// index alone (DieSeed), so the aggregated statistics are identical at any
// worker count. It is YieldStream with no per-die consumer.
func YieldStudyOn(ctx context.Context, an *sta.Analyzer, al *core.Allocator, nom *sta.Timing, proc *tech.Process, m Model, nDies int, seed int64, opts TuneOptions) (*YieldStats, error) {
	return YieldStream(ctx, an, al, nom, proc, m, nDies, seed, opts, nil)
}

// yieldChunk bounds how many per-die results a yield study holds at once:
// dies are tuned in windows of this size and handed to the consumer (or the
// statistics accumulator) before the next window starts, so a million-die
// stream retains a constant O(yieldChunk) working set instead of one
// TuneResult per die.
const yieldChunk = 256

// defaultBatchWidth is the die-batch width of YieldStream's population
// kernels when TuneOptions.BatchWidth is unset. The batch amortizes per-gate
// structure lookups across its lanes (sampler waves, STA topo walks), so
// wider is better until the lane-contiguous working set outgrows the cache;
// the width never changes results, only locality.
const defaultBatchWidth = 16

// wilsonZ is the two-sided 95% normal quantile used by the adaptive
// termination interval.
const wilsonZ = 1.959963984540054

// wilsonHalfWidth returns the half-width of the 95% Wilson score interval
// for successes out of n trials — the adaptive-termination criterion on the
// recovered-yield fraction. The Wilson form stays honest at the extremes
// (p̂ = 0 or 1 still yields a positive width shrinking as 1/n), where the
// naive normal interval collapses to zero and would stop a study after its
// first die.
func wilsonHalfWidth(n, successes int) float64 {
	fn := float64(n)
	p := float64(successes) / fn
	z2 := wilsonZ * wilsonZ
	return wilsonZ / (1 + z2/fn) * math.Sqrt(p*(1-p)/fn+z2/(4*fn*fn))
}

// YieldStream is the streaming core of the yield study: it tunes nDies dies
// in bounded windows (yieldChunk) over a worker pool and, when emit is
// non-nil, invokes it once per die in strictly increasing die order with
// that die's TuneResult. The result passed to emit is owned by the callee
// only for the duration of the call at the aggregate level — it is never
// referenced again by YieldStream, so emit may retain it, but memory stays
// bounded only if emit does not.
//
// Within a window, dies move through the population kernels in batches of
// TuneOptions.BatchWidth: one SoA sample block per batch, one die-major
// batched re-timing, and one fused leakage sweep over the lanes that need no
// bias — only dies that miss timing (or whose sensor demands bias) fall back
// to the scalar allocate-verify-escalate tail. Every lane preserves the
// per-die float operation order of the scalar path, so the batch width (and
// the worker count, and the chunk size) never changes a single byte of the
// per-die results or the aggregate.
//
// The aggregated statistics are accumulated in die order and are therefore
// byte-identical to YieldStudyOn's at any worker count or chunk size. When
// opts.TargetCI is set, the stream additionally stops after the die whose
// accumulation satisfies the interval — identical to a fixed-count study of
// exactly that many dies. An emit error, a tuning error, or ctx cancellation
// aborts the stream and is returned; the partially accumulated stats are
// discarded.
func YieldStream(ctx context.Context, an *sta.Analyzer, al *core.Allocator, nom *sta.Timing, proc *tech.Process, m Model, nDies int, seed int64, opts TuneOptions, emit func(die int, r *TuneResult) error) (*YieldStats, error) {
	return YieldStreamResumable(ctx, an, al, nom, proc, m, nDies, seed, opts, StreamOptions{}, emit)
}

// StreamOptions controls the resume and checkpoint behavior of
// YieldStreamResumable. The zero value reproduces YieldStream exactly: start
// at die 0, no prior state, no checkpoints.
type StreamOptions struct {
	// StartDie begins the stream at this absolute die index instead of 0.
	// Dies [0, StartDie) are assumed already studied; their accumulator
	// state must be supplied via Prior. Per-die seeds are absolute
	// (DieSeed(seed, die)), so the emitted suffix is byte-identical to the
	// tail of an unbroken run over the same nDies.
	StartDie int
	// Prior is the accumulator state covering dies [0, StartDie). Required
	// (with Prior.Dies == StartDie) when StartDie > 0; must be nil or
	// zero-die otherwise.
	Prior *YieldAccum
	// CheckpointEvery, when positive, invokes OnCheckpoint after every
	// CheckpointEvery-th die (at absolute die counts divisible by it), with
	// the accumulator state at that point. A stream resumed from a
	// checkpoint re-emits the remaining checkpoints at the same absolute
	// positions. No checkpoint is emitted at the very end of the stream
	// (the footer stats cover it) or after adaptive termination.
	CheckpointEvery int
	// OnCheckpoint receives the die count covered (== acc.Dies) and a copy
	// of the accumulator. A non-nil error aborts the stream.
	OnCheckpoint func(die int, acc YieldAccum) error
}

// YieldStreamResumable is YieldStream with an offset start and periodic
// accumulator checkpoints. Resuming with the accumulator state captured at
// die k replays the identical float operation sequence of an unbroken run's
// tail: per-die results, checkpoint states and the final YieldStats are all
// byte-identical. StartDie == nDies is the degenerate footer-only resume —
// no dies are tuned and the stats are finalized straight from Prior.
func YieldStreamResumable(ctx context.Context, an *sta.Analyzer, al *core.Allocator, nom *sta.Timing, proc *tech.Process, m Model, nDies int, seed int64, opts TuneOptions, sopts StreamOptions, emit func(die int, r *TuneResult) error) (*YieldStats, error) {
	if nDies <= 0 {
		return nil, errors.New("variation: nDies must be positive")
	}
	if sopts.StartDie < 0 || sopts.StartDie > nDies {
		return nil, fmt.Errorf("variation: StartDie %d out of range [0, %d]", sopts.StartDie, nDies)
	}
	if sopts.StartDie > 0 {
		if sopts.Prior == nil {
			return nil, errors.New("variation: StartDie > 0 requires a Prior accumulator")
		}
		if sopts.Prior.Dies != sopts.StartDie {
			return nil, fmt.Errorf("variation: Prior covers %d dies, StartDie is %d", sopts.Prior.Dies, sopts.StartDie)
		}
	} else if sopts.Prior != nil && sopts.Prior.Dies != 0 {
		return nil, fmt.Errorf("variation: Prior covers %d dies but StartDie is 0", sopts.Prior.Dies)
	}
	if opts.SolveCache != nil && opts.SolveCache.Allocator() != al {
		return nil, errors.New("variation: TuneOptions.SolveCache built over a different Allocator")
	}
	pl := an.Placement()
	opts.setDefaults()
	limit := nom.DcritPS * (1 + opts.SlackTolPct)
	width := opts.BatchWidth
	if width <= 0 {
		width = defaultBatchWidth
	}
	mon, isMonitor := opts.Sensor.(InSituMonitor)
	memoizable := isMonitor && mon.ResolutionPct > 0

	// The assignment-independent structure is built once for the whole
	// stream: the Sampler's gate-centre geometry and the LeakModel's
	// per-gate base leakage and per-level bias tables are immutable, so
	// every worker Clones them — private generator, die buffer and
	// per-die leak factors over shared tables.
	smpBase := NewSampler(pl, proc, m)
	leakBase := NewLeakModel(pl, proc)

	// Worker states are pooled across chunks: between MapWith calls every
	// worker is idle, so the whole pool is free again — each chunk checks
	// out warmed Tuners, Samplers and batch blocks instead of re-growing
	// O(gates·width) scratch ~nDies/yieldChunk times over a long stream.
	type yieldWorker struct {
		tn    *Tuner
		smp   *Sampler
		blk   *DieBlock
		tb    *sta.TimingBatch
		dieTm *sta.Timing // DieInto scratch for generic sensors
		shim  sta.Timing  // Dcrit-only view for the in-situ monitor
		seeds []int64
		fast  []int     // no-bias lanes of the current batch
		leakN []float64 // their unbiased leakages
	}
	var (
		tmu     sync.Mutex
		workers []*yieldWorker
		avail   []*yieldWorker
	)
	checkout := func() *yieldWorker {
		tmu.Lock()
		defer tmu.Unlock()
		if n := len(avail); n > 0 {
			w := avail[n-1]
			avail = avail[:n-1]
			return w
		}
		tn := NewTuner(NewRetimer(an), al)
		tn.leak = leakBase.Clone()
		w := &yieldWorker{tn: tn, smp: smpBase.Clone(), blk: &DieBlock{}}
		workers = append(workers, w)
		return w
	}

	// runBatch carries one batch of dies [base, base+cnt) through the
	// population kernels: sample block, batched re-timing, per-lane
	// sense-and-branch, scalar tail for biased lanes, one fused leakage
	// sweep for the rest. Per lane the results are bit-identical to
	// TuneOn of the same die.
	runBatch := func(w *yieldWorker, base, cnt int) ([]*TuneResult, error) {
		w.seeds = w.seeds[:0]
		for i := 0; i < cnt; i++ {
			w.seeds = append(w.seeds, DieSeed(seed, base+i))
		}
		w.blk = w.smp.SampleBlockInto(w.blk, w.seeds)
		tb, err := an.RunLightBatch(w.blk.DelayScale, cnt, w.tb)
		if err != nil {
			return nil, err
		}
		w.tb = tb
		lm := w.tn.leakModel(proc)
		out := make([]*TuneResult, cnt)
		w.fast = w.fast[:0]
		for d := 0; d < cnt; d++ {
			die := w.blk.Die(d)
			dieDcrit := tb.DcritPS[d]
			res := &TuneResult{
				BetaActual:    dieDcrit/nom.DcritPS - 1,
				DcritBeforePS: dieDcrit,
			}
			out[d] = res
			// The in-situ monitor reads only the die's critical delay, so
			// it senses straight off the batch; generic sensors get the
			// lane gathered into a scalar light Timing.
			if isMonitor {
				w.shim.DcritPS = dieDcrit
				res.BetaSensed = opts.Sensor.MeasureBeta(nom, &w.shim, die.Seed)
			} else {
				w.dieTm = tb.DieInto(d, w.dieTm)
				res.BetaSensed = opts.Sensor.MeasureBeta(nom, w.dieTm, die.Seed)
			}
			target := res.BetaSensed + opts.GuardbandPct
			if dieDcrit <= limit && target <= 0 {
				// Fast or nominal die: complete it in-batch and defer
				// its (unbiased) leakage to the fused block sweep.
				res.Met = true
				res.DcritAfterPS = dieDcrit
				w.fast = append(w.fast, d)
				continue
			}
			lm.SetDie(die)
			res.LeakBeforeNW = lm.LeakageNW(nil)
			if _, err := w.tn.tuneTail(res, die, nom.DcritPS, dieDcrit, limit, target, memoizable, proc, opts); err != nil {
				return nil, err
			}
		}
		w.leakN = lm.LeakageBlockNW(w.blk, w.fast, w.leakN[:0])
		for k, d := range w.fast {
			out[d].LeakBeforeNW = w.leakN[k]
			out[d].LeakAfterNW = w.leakN[k]
		}
		return out, nil
	}

	// The accumulator starts fresh (WorstBetaPct at -Inf so an all-fast
	// population's negative worst slowdown is not floored at nominal) or
	// from the caller's prior state when resuming; acc.Dies is the absolute
	// die index throughout, so checkpoint positions and the adaptive
	// termination point are independent of where the stream started.
	acc := newYieldAccum()
	if sopts.Prior != nil {
		acc = *sopts.Prior
	}
	done := false
	for lo := sopts.StartDie; lo < nDies && !done; lo += yieldChunk {
		hi := min(lo+yieldChunk, nDies)
		nBatches := (hi - lo + width - 1) / width
		avail = append(avail[:0], workers...)
		results, err := flow.MapWith(ctx, opts.Workers, nBatches,
			checkout,
			func(_ context.Context, w *yieldWorker, b int) ([]*TuneResult, error) {
				base := lo + b*width
				return runBatch(w, base, min(width, hi-base))
			})
		if err != nil {
			return nil, err
		}
		for _, batch := range results {
			for _, r := range batch {
				idx := acc.Dies
				acc.fold(r, limit)
				if emit != nil {
					if err := emit(idx, r); err != nil {
						return nil, err
					}
				}
				if opts.TargetCI > 0 && wilsonHalfWidth(acc.Dies, acc.MetAfter) <= opts.TargetCI {
					// Converged: drop the rest of the window. Everything
					// accumulated so far is exactly a processed-die study.
					done = true
					break
				}
				if sopts.CheckpointEvery > 0 && sopts.OnCheckpoint != nil &&
					acc.Dies%sopts.CheckpointEvery == 0 && acc.Dies < nDies {
					if err := sopts.OnCheckpoint(acc.Dies, acc); err != nil {
						return nil, err
					}
				}
			}
			if done {
				break
			}
		}
	}
	return acc.stats(), nil
}
