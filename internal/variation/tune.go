package variation

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

// TuneOptions configure the post-silicon tuning loop.
type TuneOptions struct {
	// Sensor estimates the die slowdown (default: exact in-situ monitor
	// with 1% resolution).
	Sensor Sensor
	// GuardbandPct is added to the sensed slowdown before allocation
	// (sensor error headroom).
	GuardbandPct float64
	// MaxClusters / MaxBiasPairs bound the clustering (defaults 3 / 2).
	MaxClusters  int
	MaxBiasPairs int
	// MaxIters bounds the escalate-and-retry loop (default 5).
	MaxIters int
	// SlackTolPct accepts dies within this fraction above nominal Dcrit
	// (default 0.001).
	SlackTolPct float64
	// Workers bounds concurrent die tunings in YieldStudy (0 = one per
	// CPU, 1 = sequential). Per-die seeds keep the statistics independent
	// of the worker count.
	Workers int
}

func (o *TuneOptions) setDefaults() {
	if o.Sensor == nil {
		o.Sensor = InSituMonitor{ResolutionPct: 0.01}
	}
	if o.MaxClusters == 0 {
		o.MaxClusters = 3
	}
	if o.MaxBiasPairs == 0 {
		o.MaxBiasPairs = 2
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 5
	}
	if o.SlackTolPct <= 0 {
		o.SlackTolPct = 0.001
	}
}

// TuneResult reports one die's tuning outcome.
type TuneResult struct {
	// BetaActual is the die's true slowdown; BetaSensed what the sensor
	// saw (before guardband).
	BetaActual, BetaSensed float64
	// Solution is the applied clustering (nil when no bias was needed).
	Solution *core.Solution
	// Met reports whether the tuned die meets nominal timing.
	Met bool
	// Reason explains a failed tuning.
	Reason string
	// DcritBeforePS/DcritAfterPS are the die critical delays.
	DcritBeforePS, DcritAfterPS float64
	// LeakBeforeNW/LeakAfterNW are the die leakages.
	LeakBeforeNW, LeakAfterNW float64
	// Iters counts allocation attempts.
	Iters int
}

// Tune runs the paper's post-silicon flow on one die: sense the slowdown,
// allocate clustered FBB for it on the design-time (nominal) timing model,
// verify against the die's actual variation, and escalate the target
// slowdown if the non-uniform variation defeats the uniform-beta model.
func Tune(pl *place.Placement, nom *sta.Timing, die *Die, proc *tech.Process, opts TuneOptions) (*TuneResult, error) {
	opts.setDefaults()
	dieTm, err := die.Timing(pl)
	if err != nil {
		return nil, err
	}
	res := &TuneResult{
		BetaActual:    dieTm.DcritPS/nom.DcritPS - 1,
		DcritBeforePS: dieTm.DcritPS,
		LeakBeforeNW:  die.LeakageNW(pl, proc, nil),
	}
	limit := nom.DcritPS * (1 + opts.SlackTolPct)

	res.BetaSensed = opts.Sensor.MeasureBeta(nom, dieTm)
	target := res.BetaSensed + opts.GuardbandPct
	if dieTm.DcritPS <= limit && target <= 0 {
		// Fast or nominal die: nothing to do.
		res.Met = true
		res.DcritAfterPS = dieTm.DcritPS
		res.LeakAfterNW = res.LeakBeforeNW
		return res, nil
	}
	if target <= 0 {
		target = 0.005 // sensor saw nothing but the die misses timing
	}

	for iter := 0; iter < opts.MaxIters; iter++ {
		res.Iters = iter + 1
		prob, err := core.BuildProblem(pl, nom, core.Options{
			Beta:         target,
			MaxClusters:  opts.MaxClusters,
			MaxBiasPairs: opts.MaxBiasPairs,
		})
		if err != nil {
			return nil, err
		}
		sol, err := prob.SolveHeuristic()
		if err != nil {
			// Beyond the FBB compensation range.
			res.Reason = err.Error()
			res.DcritAfterPS = dieTm.DcritPS
			res.LeakAfterNW = res.LeakBeforeNW
			return res, nil
		}
		tuned, err := die.TimingWithBias(pl, proc, sol.Assign)
		if err != nil {
			return nil, err
		}
		res.Solution = sol
		res.DcritAfterPS = tuned.DcritPS
		res.LeakAfterNW = die.LeakageNW(pl, proc, sol.Assign)
		if tuned.DcritPS <= limit {
			res.Met = true
			return res, nil
		}
		// The uniform-beta model under-estimated this die's worst
		// corner; escalate and retry (a real controller bumps the
		// bias code the same way).
		short := tuned.DcritPS/nom.DcritPS - 1
		target += short + 0.005
	}
	res.Reason = fmt.Sprintf("not met after %d escalations", opts.MaxIters)
	return res, nil
}

// YieldStats aggregates a Monte-Carlo tuning study.
type YieldStats struct {
	Dies                 int
	MetBefore, MetAfter  int
	MeanBetaPct          float64
	WorstBetaPct         float64
	MeanLeakBeforeNW     float64
	MeanLeakAfterNW      float64
	MeanLeakTunedOnlyNW  float64 // average leakage of dies that got bias
	TunedDies            int
	FailedCompensations  int
	MeanTuneIters        float64
	MeanClustersPerTuned float64
}

// YieldPct returns before/after parametric yield percentages.
func (y *YieldStats) YieldPct() (before, after float64) {
	if y.Dies == 0 {
		return 0, 0
	}
	return 100 * float64(y.MetBefore) / float64(y.Dies),
		100 * float64(y.MetAfter) / float64(y.Dies)
}

// YieldStudy samples nDies from the model, tunes each, and aggregates the
// yield and leakage statistics — the system-level experiment motivating the
// paper ("bring the slow dies back to within the range of acceptable
// specs"). Dies are tuned concurrently on a flow worker pool (opts.Workers
// bounds it; default one per CPU) and cancelling ctx aborts the study; the
// per-die seeds make the result independent of scheduling.
func YieldStudy(ctx context.Context, pl *place.Placement, proc *tech.Process, m Model, nDies int, seed int64, opts TuneOptions) (*YieldStats, error) {
	if nDies <= 0 {
		return nil, errors.New("variation: nDies must be positive")
	}
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		return nil, err
	}
	opts.setDefaults()
	limit := nom.DcritPS * (1 + opts.SlackTolPct)

	results, err := flow.Map(ctx, opts.Workers, nDies,
		func(_ context.Context, i int) (*TuneResult, error) {
			die := m.Sample(pl, proc, seed+int64(i)*7919)
			return Tune(pl, nom, die, proc, opts)
		})
	if err != nil {
		return nil, err
	}

	st := &YieldStats{Dies: nDies}
	sumIters, sumClusters := 0, 0
	for _, r := range results {
		st.MeanBetaPct += r.BetaActual * 100
		if r.BetaActual*100 > st.WorstBetaPct {
			st.WorstBetaPct = r.BetaActual * 100
		}
		if r.DcritBeforePS <= limit {
			st.MetBefore++
		}
		if r.Met {
			st.MetAfter++
		}
		st.MeanLeakBeforeNW += r.LeakBeforeNW
		st.MeanLeakAfterNW += r.LeakAfterNW
		if r.Solution != nil {
			st.TunedDies++
			st.MeanLeakTunedOnlyNW += r.LeakAfterNW
			sumIters += r.Iters
			sumClusters += r.Solution.Clusters
		}
		if !r.Met {
			st.FailedCompensations++
		}
	}
	st.MeanBetaPct /= float64(nDies)
	st.MeanLeakBeforeNW /= float64(nDies)
	st.MeanLeakAfterNW /= float64(nDies)
	if st.TunedDies > 0 {
		st.MeanLeakTunedOnlyNW /= float64(st.TunedDies)
		st.MeanTuneIters = float64(sumIters) / float64(st.TunedDies)
		st.MeanClustersPerTuned = float64(sumClusters) / float64(st.TunedDies)
	}
	return st, nil
}
