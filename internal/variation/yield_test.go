package variation

import (
	"context"
	"testing"

	"repro/internal/sta"
	"repro/internal/tech"
)

// TestYieldStudyParallelMatchesSequential pins the determinism fix: per-die
// seeds are mixed from the die index alone, so the aggregated statistics
// must be identical at any Workers setting (including the default
// one-per-CPU pool).
func TestYieldStudyParallelMatchesSequential(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	dies := 12
	if !testing.Short() {
		dies = 24
	}
	run := func(workers int) *YieldStats {
		t.Helper()
		st, err := YieldStudy(context.Background(), pl, proc, Default(), dies, 77,
			TuneOptions{GuardbandPct: 0.005, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(1)
	for _, workers := range []int{2, 8, 0} {
		if par := run(workers); *par != *seq {
			t.Errorf("Workers=%d diverged from sequential:\nseq: %+v\npar: %+v",
				workers, seq, par)
		}
	}
}

// TestTuneOnMatchesTune checks the Retimer-based tuning path against the
// one-shot Tune for a population of dies sharing one Retimer (and thus one
// dirty Timing buffer).
func TestTuneOnMatchesTune(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRetimer(an)
	m := Default()
	opts := TuneOptions{GuardbandPct: 0.005}
	for i := 0; i < 10; i++ {
		die := m.Sample(pl, proc, DieSeed(5, i))
		want, err := Tune(pl, nom, die, proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TuneOn(rt, nom, die, proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want.BetaActual != got.BetaActual || want.BetaSensed != got.BetaSensed ||
			want.Met != got.Met || want.Reason != got.Reason || want.Iters != got.Iters ||
			want.DcritBeforePS != got.DcritBeforePS || want.DcritAfterPS != got.DcritAfterPS ||
			want.LeakBeforeNW != got.LeakBeforeNW || want.LeakAfterNW != got.LeakAfterNW {
			t.Fatalf("die %d: TuneOn diverged:\nwant %+v\ngot  %+v", i, want, got)
		}
		if (want.Solution == nil) != (got.Solution == nil) {
			t.Fatalf("die %d: solution presence diverged", i)
		}
		if want.Solution != nil {
			if len(want.Solution.Assign) != len(got.Solution.Assign) {
				t.Fatalf("die %d: assignment lengths diverged", i)
			}
			for r := range want.Solution.Assign {
				if want.Solution.Assign[r] != got.Solution.Assign[r] {
					t.Fatalf("die %d: assignment diverged at row %d", i, r)
				}
			}
		}
	}
}

// TestRecoverLeakageOnMatches checks the Retimer-based RBB scan against the
// one-shot RecoverLeakage across a shared buffer.
func TestRecoverLeakageOnMatches(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRetimer(an)
	m := Default()
	for i := 0; i < 8; i++ {
		die := m.Sample(pl, proc, DieSeed(31, i))
		want, err := RecoverLeakage(pl, nom, die, proc, RBBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := RecoverLeakageOn(rt, nom, die, proc, RBBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if *want != *got {
			t.Fatalf("die %d: RecoverLeakageOn diverged:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestDieSeedProperties: index-derived, seed-sensitive, and collision-free
// over a realistic population.
func TestDieSeedProperties(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		s := DieSeed(1, i)
		if seen[s] {
			t.Fatalf("die seed collision at index %d", i)
		}
		seen[s] = true
	}
	if DieSeed(1, 5) != DieSeed(1, 5) {
		t.Error("DieSeed not deterministic")
	}
	if DieSeed(1, 5) == DieSeed(2, 5) {
		t.Error("DieSeed ignores the study seed")
	}
}
