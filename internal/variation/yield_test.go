package variation

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/sta"
	"repro/internal/tech"
)

// TestYieldStudyParallelMatchesSequential pins the determinism fix: per-die
// seeds are mixed from the die index alone, so the aggregated statistics
// must be identical at any Workers setting (including the default
// one-per-CPU pool).
func TestYieldStudyParallelMatchesSequential(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	dies := 12
	if !testing.Short() {
		dies = 24
	}
	run := func(workers int) *YieldStats {
		t.Helper()
		st, err := YieldStudy(context.Background(), pl, proc, Default(), dies, 77,
			TuneOptions{GuardbandPct: 0.005, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq := run(1)
	for _, workers := range []int{2, 8, 0} {
		if par := run(workers); *par != *seq {
			t.Errorf("Workers=%d diverged from sequential:\nseq: %+v\npar: %+v",
				workers, seq, par)
		}
	}
}

// TestTuneOnMatchesTune checks the Retimer-based tuning path against the
// one-shot Tune for a population of dies sharing one Retimer (and thus one
// dirty Timing buffer).
func TestTuneOnMatchesTune(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	al, err := core.NewAllocator(pl, nom)
	if err != nil {
		t.Fatal(err)
	}
	tn := NewTuner(NewRetimer(an), al)
	m := Default()
	opts := TuneOptions{GuardbandPct: 0.005}
	for i := 0; i < 10; i++ {
		die := m.Sample(pl, proc, DieSeed(5, i))
		want, err := Tune(pl, nom, die, proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TuneOn(tn, nom, die, proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if want.BetaActual != got.BetaActual || want.BetaSensed != got.BetaSensed ||
			want.Met != got.Met || want.Reason != got.Reason || want.Iters != got.Iters ||
			want.DcritBeforePS != got.DcritBeforePS || want.DcritAfterPS != got.DcritAfterPS ||
			want.LeakBeforeNW != got.LeakBeforeNW || want.LeakAfterNW != got.LeakAfterNW {
			t.Fatalf("die %d: TuneOn diverged:\nwant %+v\ngot  %+v", i, want, got)
		}
		if (want.Solution == nil) != (got.Solution == nil) {
			t.Fatalf("die %d: solution presence diverged", i)
		}
		if want.Solution != nil {
			if len(want.Solution.Assign) != len(got.Solution.Assign) {
				t.Fatalf("die %d: assignment lengths diverged", i)
			}
			for r := range want.Solution.Assign {
				if want.Solution.Assign[r] != got.Solution.Assign[r] {
					t.Fatalf("die %d: assignment diverged at row %d", i, r)
				}
			}
		}
	}
}

// TestRecoverLeakageOnMatches checks the Retimer-based RBB scan against the
// one-shot RecoverLeakage across a shared buffer.
func TestRecoverLeakageOnMatches(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRetimer(an)
	m := Default()
	for i := 0; i < 8; i++ {
		die := m.Sample(pl, proc, DieSeed(31, i))
		want, err := RecoverLeakage(pl, nom, die, proc, RBBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := RecoverLeakageOn(rt, nom, die, proc, RBBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if *want != *got {
			t.Fatalf("die %d: RecoverLeakageOn diverged:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

// TestTuneResultConsistency pins the failure-path contract: whatever a
// die's fate — tuned, never allocatable, or failed on a later escalation —
// the reported Solution, DcritAfterPS and LeakAfterNW must describe one
// coherent state (the last applied allocation, or the untouched die). A
// wide variation model forces plenty of beyond-compensation-range dies.
func TestTuneResultConsistency(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	al, err := core.NewAllocator(pl, nom)
	if err != nil {
		t.Fatal(err)
	}
	tn := NewTuner(NewRetimer(an), al)
	m := Model{SigmaD2DmV: 60, SigmaSysmV: 30, SigmaRndmV: 20, CorrLenUM: 150}
	opts := TuneOptions{GuardbandPct: 0.005, MaxIters: 2}
	failed := 0
	for i := 0; i < 30; i++ {
		die := m.Sample(pl, proc, DieSeed(13, i))
		r, err := TuneOn(tn, nom, die, proc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if r.Solution == nil {
			if r.LeakAfterNW != r.LeakBeforeNW || r.DcritAfterPS != r.DcritBeforePS {
				t.Fatalf("die %d: no solution but after-state diverges from before-state: %+v", i, r)
			}
			if r.Reason != "" {
				failed++
			}
			continue
		}
		if got := die.LeakageNW(pl, proc, r.Solution.Assign); got != r.LeakAfterNW {
			t.Fatalf("die %d: LeakAfterNW %v does not match the reported solution's %v",
				i, r.LeakAfterNW, got)
		}
		tuned, err := tn.Retimer().TimeWithBias(die, proc, r.Solution.Assign)
		if err != nil {
			t.Fatal(err)
		}
		if tuned.DcritPS != r.DcritAfterPS {
			t.Fatalf("die %d: DcritAfterPS %v does not match the reported solution's %v",
				i, r.DcritAfterPS, tuned.DcritPS)
		}
	}
	if failed == 0 {
		t.Error("variation model too tame: no die exercised the failure path")
	}
}

// TestYieldStudySolverSelection runs the study under each registered
// pluggable solver: statistics must stay deterministic across worker
// counts, and the local solver must never leak more than the heuristic on
// the tuned dies it compensates.
func TestYieldStudySolverSelection(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	dies := 10
	run := func(solver core.Solver, workers int) *YieldStats {
		t.Helper()
		st, err := YieldStudy(context.Background(), pl, proc, Default(), dies, 99,
			TuneOptions{GuardbandPct: 0.005, Workers: workers, Solver: solver})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	local := &core.LocalSolver{Seed: 3}
	seq := run(local, 1)
	if par := run(local, 4); *par != *seq {
		t.Errorf("local-solver study diverged across worker counts:\nseq: %+v\npar: %+v", seq, par)
	}
	heur := run(nil, 1)
	if seq.MetAfter < heur.MetAfter {
		t.Errorf("local solver tuned fewer dies (%d) than the heuristic (%d)",
			seq.MetAfter, heur.MetAfter)
	}
	if seq.TunedDies == heur.TunedDies && seq.MeanLeakAfterNW > heur.MeanLeakAfterNW+1e-6 {
		t.Errorf("local solver spent more leakage (%f) than the heuristic (%f)",
			seq.MeanLeakAfterNW, heur.MeanLeakAfterNW)
	}
}

// TestDieSeedProperties: index-derived, seed-sensitive, and collision-free
// over a realistic population.
func TestDieSeedProperties(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		s := DieSeed(1, i)
		if seen[s] {
			t.Fatalf("die seed collision at index %d", i)
		}
		seen[s] = true
	}
	if DieSeed(1, 5) != DieSeed(1, 5) {
		t.Error("DieSeed not deterministic")
	}
	if DieSeed(1, 5) == DieSeed(2, 5) {
		t.Error("DieSeed ignores the study seed")
	}
}
