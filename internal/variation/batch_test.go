package variation

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/tech"
)

// TestSampleBlockIntoMatchesSampleInto: every lane of a sampled block must
// be bit-identical to a scalar SampleInto of the same seed, across regrows
// of one reused block (shrinking and growing the lane count).
func TestSampleBlockIntoMatchesSampleInto(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	s := NewSampler(pl, proc, Default())
	ref := NewSampler(pl, proc, Default())
	blk := &DieBlock{}
	for _, seeds := range [][]int64{
		{11, 22, 33, 44, 55},
		{7},
		{101, 102, 103, 104, 105, 106, 107},
	} {
		blk = s.SampleBlockInto(blk, seeds)
		if blk.Len() != len(seeds) {
			t.Fatalf("block Len %d, want %d", blk.Len(), len(seeds))
		}
		for d, seed := range seeds {
			die := blk.Die(d)
			if die.Seed != seed {
				t.Fatalf("lane %d seed %d, want %d", d, die.Seed, seed)
			}
			want := ref.SampleInto(nil, seed)
			if len(die.DVthV) != len(want.DVthV) {
				t.Fatalf("lane %d: %d gates, want %d", d, len(die.DVthV), len(want.DVthV))
			}
			for g := range want.DVthV {
				if die.DVthV[g] != want.DVthV[g] || die.DelayScale[g] != want.DelayScale[g] {
					t.Fatalf("seed %d gate %d: (%v, %v), want (%v, %v)", seed, g,
						die.DVthV[g], die.DelayScale[g], want.DVthV[g], want.DelayScale[g])
				}
			}
		}
	}
}

// TestLeakageBlockNWMatchesScalar: the fused block sweep must reproduce
// SetDie + LeakageNW(nil) bit for bit on every listed lane — and must not
// disturb the model's SetDie state while doing it.
func TestLeakageBlockNWMatchesScalar(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	s := NewSampler(pl, proc, Default())
	lm := NewLeakModel(pl, proc)
	blk := s.SampleBlockInto(nil, []int64{3, 5, 8, 13, 21})

	want := make([]float64, blk.Len())
	for d := range want {
		lm.SetDie(blk.Die(d))
		want[d] = lm.LeakageNW(nil)
	}
	// Pin lane 0 as the SetDie state and prove the block sweep leaves it.
	lm.SetDie(blk.Die(0))
	pinned := lm.LeakageNW(nil)

	lanes := []int{0, 2, 4}
	got := lm.LeakageBlockNW(blk, lanes, nil)
	if len(got) != len(lanes) {
		t.Fatalf("%d outputs for %d lanes", len(got), len(lanes))
	}
	for k, d := range lanes {
		if got[k] != want[d] {
			t.Fatalf("lane %d: %v, want %v", d, got[k], want[d])
		}
	}
	if after := lm.LeakageNW(nil); after != pinned {
		t.Fatalf("block sweep disturbed SetDie state: %v, want %v", after, pinned)
	}
	// Appending into a reused buffer keeps earlier entries.
	got = lm.LeakageBlockNW(blk, []int{1}, got[:0])
	if len(got) != 1 || got[0] != want[1] {
		t.Fatalf("reused-buffer sweep: %v, want [%v]", got, want[1])
	}
}

// TestYieldStreamBatchWidthInvariance: the batch width is a pure locality
// knob — per-die results and aggregate statistics must be byte-identical to
// the scalar TuneOn loop at every width and worker count, including widths
// that do not divide the die count (partial tail batches) and widths larger
// than the population.
func TestYieldStreamBatchWidthInvariance(t *testing.T) {
	an, al, nom := streamFixture(t)
	proc := tech.Default45nm()
	const dies = 37 // not divisible by any tested width > 1
	const seed = 19
	opts := TuneOptions{GuardbandPct: 0.005}

	// Scalar reference: the per-die TuneOn loop, one worker, no batching.
	pl := an.Placement()
	m := Default()
	tn := NewTuner(NewRetimer(an), al)
	want := make([]*TuneResult, dies)
	{
		o := opts
		o.setDefaults()
		for i := 0; i < dies; i++ {
			die := m.Sample(pl, proc, DieSeed(seed, i))
			r, err := TuneOn(tn, nom, die, proc, o)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = r
		}
	}

	var baseline *YieldStats
	for _, width := range []int{1, 3, 16, 64} {
		for _, workers := range []int{1, 4} {
			o := opts
			o.BatchWidth = width
			o.Workers = workers
			got, err := YieldStream(context.Background(), an, al, nom, proc, m, dies, seed, o,
				func(die int, r *TuneResult) error {
					requireTuneResultEqual(t, die, want[die], r)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if got.Dies != dies {
				t.Fatalf("width=%d workers=%d: Dies %d, want %d", width, workers, got.Dies, dies)
			}
			if baseline == nil {
				baseline = got
			} else if *got != *baseline {
				t.Fatalf("width=%d workers=%d stats diverged:\ngot  %+v\nwant %+v",
					width, workers, got, baseline)
			}
		}
	}
}

// TestYieldStreamSharedSolveCache: a prefix-level SolveCache changes no
// statistics (cached and fresh solves are identical), gets warmed by the
// first stream, and is rejected when built over a foreign Allocator.
func TestYieldStreamSharedSolveCache(t *testing.T) {
	an, al, nom := streamFixture(t)
	proc := tech.Default45nm()
	opts := TuneOptions{GuardbandPct: 0.005}
	want, err := YieldStream(context.Background(), an, al, nom, proc, Default(), 20, 7, opts, nil)
	if err != nil {
		t.Fatal(err)
	}

	cache := core.NewSolveCache(al)
	o := opts
	o.SolveCache = cache
	for run := 0; run < 2; run++ {
		got, err := YieldStream(context.Background(), an, al, nom, proc, Default(), 20, 7, o, nil)
		if err != nil {
			t.Fatal(err)
		}
		if *got != *want {
			t.Fatalf("run %d: shared-cache stats diverged:\ngot  %+v\nwant %+v", run, got, want)
		}
	}
	if cache.Len() == 0 {
		t.Error("population stream did not warm the shared cache")
	}

	_, al2, _ := streamFixture(t)
	o.SolveCache = core.NewSolveCache(al2)
	if _, err := YieldStream(context.Background(), an, al, nom, proc, Default(), 4, 7, o, nil); err == nil {
		t.Error("foreign-allocator cache accepted")
	}
	tn := NewTuner(NewRetimer(an), al)
	die := Default().Sample(an.Placement(), proc, 1)
	if _, err := TuneOn(tn, nom, die, proc, o); err == nil {
		t.Error("TuneOn accepted a foreign-allocator cache")
	}
}

// TestWilsonHalfWidthBruteForce pins the closed-form interval against a
// bisection of its defining equation: the Wilson bounds are the roots p of
// (p̂-p)² = z²·p(1-p)/n, and the half-width is half their distance.
func TestWilsonHalfWidthBruteForce(t *testing.T) {
	root := func(n, s int, lo, hi float64) float64 {
		phat := float64(s) / float64(n)
		f := func(p float64) float64 {
			return (phat-p)*(phat-p) - wilsonZ*wilsonZ*p*(1-p)/float64(n)
		}
		// f > 0 outside the interval, < 0 inside; bisect the sign change.
		for i := 0; i < 200; i++ {
			mid := (lo + hi) / 2
			if (f(lo) > 0) == (f(mid) > 0) {
				lo = mid
			} else {
				hi = mid
			}
		}
		return (lo + hi) / 2
	}
	for _, c := range []struct{ n, s int }{
		{1, 0}, {1, 1}, {5, 3}, {20, 20}, {50, 49}, {100, 97}, {400, 380}, {1000, 500},
	} {
		lower := root(c.n, c.s, 0, float64(c.s)/float64(c.n))
		upper := root(c.n, c.s, float64(c.s)/float64(c.n), 1)
		want := (upper - lower) / 2
		got := wilsonHalfWidth(c.n, c.s)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d s=%d: halfwidth %v, brute-force %v", c.n, c.s, got, want)
		}
	}
}

// TestYieldStreamAdaptiveTruncation: with TargetCI set, the stream stops at
// the first die whose accumulation satisfies the interval, and the truncated
// stats are byte-identical to a fixed-count study of exactly that die count.
// Without TargetCI every requested die runs.
func TestYieldStreamAdaptiveTruncation(t *testing.T) {
	an, al, nom := streamFixture(t)
	proc := tech.Default45nm()
	const cap = 200
	opts := TuneOptions{GuardbandPct: 0.005, TargetCI: 0.08}

	var emitted []int
	adaptive, err := YieldStream(context.Background(), an, al, nom, proc, Default(), cap, 7, opts,
		func(die int, r *TuneResult) error {
			emitted = append(emitted, die)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Dies >= cap {
		t.Fatalf("adaptive study ran all %d dies; TargetCI never converged", cap)
	}
	if adaptive.Dies < 2 {
		t.Fatalf("adaptive study stopped after %d dies; interval math is broken", adaptive.Dies)
	}
	if len(emitted) != adaptive.Dies || emitted[len(emitted)-1] != adaptive.Dies-1 {
		t.Fatalf("emitted %d dies (last %d), stats report %d",
			len(emitted), emitted[len(emitted)-1], adaptive.Dies)
	}
	// The stopping die is the *first* satisfying one: one die earlier the
	// interval must still be open.
	if wilsonHalfWidth(adaptive.Dies, adaptive.MetAfter) > opts.TargetCI {
		t.Fatal("stream stopped before the interval converged")
	}

	fixed := TuneOptions{GuardbandPct: 0.005}
	want, err := YieldStream(context.Background(), an, al, nom, proc, Default(), adaptive.Dies, 7, fixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if *adaptive != *want {
		t.Fatalf("truncated study diverged from the fixed-count study:\nadaptive %+v\nfixed    %+v",
			adaptive, want)
	}

	full, err := YieldStream(context.Background(), an, al, nom, proc, Default(), 60, 7, fixed, nil)
	if err != nil {
		t.Fatal(err)
	}
	if full.Dies != 60 {
		t.Fatalf("default-off study ran %d of 60 dies", full.Dies)
	}
}

// TestYieldStatsWorstBetaFastOnly is the WorstBetaPct zero-floor regression:
// a population whose every die is faster than nominal has a negative worst
// slowdown, and the stats must report that maximum — not a phantom 0%.
func TestYieldStatsWorstBetaFastOnly(t *testing.T) {
	an, al, nom := streamFixture(t)
	pl := an.Placement()
	proc := tech.Default45nm()
	// Die-to-die shift only: a die whose single d2d draw is negative has
	// every gate faster than nominal (DelayScale < 1 everywhere), so its
	// beta is strictly negative. Find a seed whose first dies are all fast.
	m := Model{SigmaD2DmV: 30}
	const dies = 5
	s := NewSampler(pl, proc, m)
	seed := int64(-1)
search:
	for cand := int64(0); cand < 1000; cand++ {
		for i := 0; i < dies; i++ {
			die := s.SampleInto(nil, DieSeed(cand, i))
			for _, ds := range die.DelayScale {
				if ds >= 1 {
					continue search
				}
			}
		}
		seed = cand
		break
	}
	if seed < 0 {
		t.Fatal("no all-fast seed in 1000 candidates; model assumption broken")
	}

	worst := math.Inf(-1)
	st, err := YieldStream(context.Background(), an, al, nom, proc, m, dies, seed,
		TuneOptions{GuardbandPct: 0.005},
		func(die int, r *TuneResult) error {
			if r.BetaActual >= 0 {
				t.Fatalf("die %d not fast (beta %v); fixture broken", die, r.BetaActual)
			}
			if b := r.BetaActual * 100; b > worst {
				worst = b
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.WorstBetaPct >= 0 {
		t.Fatalf("all-fast population reports WorstBetaPct %v; zero floor is back", st.WorstBetaPct)
	}
	if st.WorstBetaPct != worst {
		t.Fatalf("WorstBetaPct %v, want the true maximum %v", st.WorstBetaPct, worst)
	}
}
