package variation

import (
	"context"
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

func placed(t *testing.T, name string) *place.Placement {
	t.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestSampleDeterministicAndScaled(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	m := Default()
	d1 := m.Sample(pl, proc, 42)
	d2 := m.Sample(pl, proc, 42)
	for g := range d1.DVthV {
		if d1.DVthV[g] != d2.DVthV[g] {
			t.Fatal("sampling not deterministic")
		}
	}
	d3 := m.Sample(pl, proc, 43)
	same := true
	for g := range d1.DVthV {
		if d1.DVthV[g] != d3.DVthV[g] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical dies")
	}
	// Delay scale consistent with the threshold shift.
	for g, dv := range d1.DVthV {
		want := proc.DelayFactorDVth(dv)
		if math.Abs(d1.DelayScale[g]-want) > 1e-12 {
			t.Fatalf("gate %d: scale %f, want %f", g, d1.DelayScale[g], want)
		}
	}
}

func TestVariationStatisticsSane(t *testing.T) {
	pl := placed(t, "c3540")
	proc := tech.Default45nm()
	m := Default()
	// Aggregate per-gate sigma over many dies should be near the
	// quadrature sum of the components.
	wantSigma := math.Sqrt(m.SigmaD2DmV*m.SigmaD2DmV+
		m.SigmaSysmV*m.SigmaSysmV+m.SigmaRndmV*m.SigmaRndmV) / 1000
	var sum, sumSq float64
	n := 0
	for seed := int64(0); seed < 40; seed++ {
		die := m.Sample(pl, proc, seed)
		for _, dv := range die.DVthV {
			sum += dv
			sumSq += dv * dv
			n++
		}
	}
	mean := sum / float64(n)
	sigma := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.005 {
		t.Errorf("mean shift %.4fV, want ~0", mean)
	}
	if sigma < wantSigma*0.7 || sigma > wantSigma*1.3 {
		t.Errorf("sigma %.4fV, want ~%.4fV", sigma, wantSigma)
	}
}

func TestSpatialCorrelation(t *testing.T) {
	// Neighbouring gates must be more alike than far-apart gates: the
	// systematic component is correlated.
	pl := placed(t, "c3540")
	proc := tech.Default45nm()
	m := Model{SigmaD2DmV: 0, SigmaSysmV: 20, SigmaRndmV: 0, CorrLenUM: 150}
	var nearSum, farSum float64
	var nearN, farN int
	for seed := int64(0); seed < 30; seed++ {
		die := m.Sample(pl, proc, seed)
		for g := 0; g+1 < len(die.DVthV); g += 7 {
			x1, y1 := pl.GateCenter(int32(g))
			for h := g + 1; h < len(die.DVthV); h += 97 {
				x2, y2 := pl.GateCenter(int32(h))
				dist := math.Hypot(x1-x2, y1-y2)
				diff := die.DVthV[g] - die.DVthV[h]
				if dist < 15 {
					nearSum += diff * diff
					nearN++
				} else if dist > 60 {
					farSum += diff * diff
					farN++
				}
			}
		}
	}
	if nearN == 0 || farN == 0 {
		t.Skip("placement too small for distance buckets")
	}
	near := nearSum / float64(nearN)
	far := farSum / float64(farN)
	if near >= far {
		t.Errorf("near-pair variance %g not below far-pair %g", near, far)
	}
}

func TestDieTimingSlowerForPositiveShift(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{SigmaD2DmV: 30, SigmaSysmV: 0, SigmaRndmV: 0}
	// Find a slow die (positive d2d shift).
	for seed := int64(0); seed < 20; seed++ {
		die := m.Sample(pl, proc, seed)
		if die.DVthV[0] <= 0.01 {
			continue
		}
		tm, err := die.Timing(pl)
		if err != nil {
			t.Fatal(err)
		}
		if tm.DcritPS <= nom.DcritPS {
			t.Errorf("slow die (dvth=%.3f) not slower: %f <= %f",
				die.DVthV[0], tm.DcritPS, nom.DcritPS)
		}
		return
	}
	t.Skip("no slow die found in 20 seeds")
}

func TestSensors(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Default()
	die := m.Sample(pl, proc, 7)
	dieTm, err := die.Timing(pl)
	if err != nil {
		t.Fatal(err)
	}
	truth := dieTm.DcritPS/nom.DcritPS - 1

	exact := InSituMonitor{}.MeasureBeta(nom, dieTm, die.Seed)
	if math.Abs(exact-truth) > 1e-9 {
		t.Errorf("exact monitor read %f, truth %f", exact, truth)
	}
	quant := InSituMonitor{ResolutionPct: 0.01}.MeasureBeta(nom, dieTm, die.Seed)
	if truth > 0 && (quant < truth-1e-9 || quant > truth+0.01+1e-9) {
		t.Errorf("quantized monitor read %f for truth %f", quant, truth)
	}
	replica := ReplicaSensor{Replicas: 16, NoisePct: 0.005, Seed: 1}.MeasureBeta(nom, dieTm, die.Seed)
	if truth > 0 && math.Abs(replica-truth) > 0.05 {
		t.Errorf("replica sensor read %f, truth %f", replica, truth)
	}
}

func TestTuneSlowDie(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A uniformly slow die (pure die-to-die shift, well within range).
	m := Model{SigmaD2DmV: 25, SigmaSysmV: 4, SigmaRndmV: 3}
	for seed := int64(0); seed < 40; seed++ {
		die := m.Sample(pl, proc, seed)
		tm, err := die.Timing(pl)
		if err != nil {
			t.Fatal(err)
		}
		beta := tm.DcritPS/nom.DcritPS - 1
		if beta < 0.03 || beta > 0.12 {
			continue
		}
		r, err := Tune(pl, nom, die, proc, TuneOptions{GuardbandPct: 0.005})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Met {
			t.Fatalf("seed %d: slow die (beta=%.1f%%) not compensated: %s",
				seed, beta*100, r.Reason)
		}
		if r.Solution == nil {
			t.Fatal("tuning reported met without a solution on a slow die")
		}
		if r.DcritAfterPS > nom.DcritPS*1.002 {
			t.Errorf("tuned Dcrit %f still above nominal %f", r.DcritAfterPS, nom.DcritPS)
		}
		if r.LeakAfterNW <= r.LeakBeforeNW {
			t.Error("FBB must cost leakage")
		}
		return
	}
	t.Skip("no die in the target slowdown window")
}

func TestTuneFastDieDoesNothing(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	nom, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := Model{SigmaD2DmV: 25, SigmaSysmV: 0, SigmaRndmV: 0}
	for seed := int64(0); seed < 40; seed++ {
		die := m.Sample(pl, proc, seed)
		if die.DVthV[0] >= -0.01 {
			continue // want a clearly fast die
		}
		r, err := Tune(pl, nom, die, proc, TuneOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Met || r.Solution != nil {
			t.Errorf("fast die should pass untouched: met=%v sol=%v", r.Met, r.Solution)
		}
		if r.LeakAfterNW != r.LeakBeforeNW {
			t.Error("fast die leakage changed")
		}
		return
	}
	t.Skip("no fast die found")
}

func TestYieldStudyImprovesYield(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	st, err := YieldStudy(context.Background(), pl, proc, Default(), 60, 1000, TuneOptions{GuardbandPct: 0.005})
	if err != nil {
		t.Fatal(err)
	}
	before, after := st.YieldPct()
	t.Logf("yield %.0f%% -> %.0f%% (tuned dies: %d, failed: %d, mean leak %.0f -> %.0f nW)",
		before, after, st.TunedDies, st.FailedCompensations,
		st.MeanLeakBeforeNW, st.MeanLeakAfterNW)
	if after < before {
		t.Errorf("tuning reduced yield: %f -> %f", before, after)
	}
	if st.MetBefore == st.Dies {
		t.Skip("variation model produced no slow dies; nothing to verify")
	}
	if after <= before {
		t.Errorf("tuning did not improve yield (%f -> %f)", before, after)
	}
	if st.MeanLeakAfterNW <= st.MeanLeakBeforeNW {
		t.Error("compensation should cost average leakage")
	}
}

func TestAging(t *testing.T) {
	if AgingDVthV(0, 1) != 0 {
		t.Error("no aging at t=0")
	}
	ten := AgingDVthV(10, 1)
	if ten < 0.025 || ten > 0.035 {
		t.Errorf("10-year drift %.3fV, want ~0.030V", ten)
	}
	if AgingDVthV(1, 1) >= ten {
		t.Error("drift must grow with time")
	}
	if AgingDVthV(10, 0.5) >= ten {
		t.Error("drift must grow with activity")
	}

	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	die := Default().Sample(pl, proc, 3)
	aged := die.Aged(proc, 10, 1)
	fresh, err := die.Timing(pl)
	if err != nil {
		t.Fatal(err)
	}
	old, err := aged.Timing(pl)
	if err != nil {
		t.Fatal(err)
	}
	if old.DcritPS <= fresh.DcritPS {
		t.Error("aged die should be slower")
	}
}

func TestTimingWithBiasCompensates(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	m := Model{SigmaD2DmV: 20, SigmaSysmV: 0, SigmaRndmV: 0}
	for seed := int64(0); seed < 30; seed++ {
		die := m.Sample(pl, proc, seed)
		if die.DVthV[0] < 0.015 {
			continue
		}
		plain, err := die.Timing(pl)
		if err != nil {
			t.Fatal(err)
		}
		full := make([]int, pl.NumRows)
		for i := range full {
			full[i] = pl.Lib.Grid.NumLevels() - 1
		}
		biased, err := die.TimingWithBias(pl, proc, full)
		if err != nil {
			t.Fatal(err)
		}
		if biased.DcritPS >= plain.DcritPS {
			t.Error("full FBB did not speed the die up")
		}
		if die.LeakageNW(pl, proc, full) <= die.LeakageNW(pl, proc, nil) {
			t.Error("full FBB did not cost leakage")
		}
		return
	}
	t.Skip("no suitably slow die")
}
