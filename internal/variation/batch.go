package variation

// DieBlock is a batch of sampled dies in one structure-of-arrays block:
// die-major rows of DVthV and DelayScale (die d's vectors are
// [d*N : (d+1)*N]) plus the per-die seeds. The row layout makes every
// per-die view zero-copy — Die(d) returns a Die whose slices alias the
// block — so the scalar tuning tail runs on block lanes without a gather,
// and hands RunLightBatch its die-major scale matrix directly.
//
// Like a Die it is a reused buffer: SampleBlockInto regrows it in place, one
// block must not be shared between concurrent samplers, and a population
// loop keeps one per worker.
type DieBlock struct {
	// N is the per-die gate count of the current block.
	N int
	// Seeds are the block's die seeds in lane order.
	Seeds []int64
	// DVthV / DelayScale are the die-major rows.
	DVthV      []float64
	DelayScale []float64

	// dies are the zero-copy per-die views over the rows.
	dies []Die
}

// Len returns the number of dies in the block.
func (b *DieBlock) Len() int { return len(b.Seeds) }

// Die returns the zero-copy view of die d: its slices alias the block's
// rows, so it is valid until the next SampleBlockInto on the same block.
func (b *DieBlock) Die(d int) *Die { return &b.dies[d] }

// grow sizes the block for w dies of n gates, reusing capacity.
func (b *DieBlock) grow(n, w int) {
	b.N = n
	if cap(b.Seeds) < w {
		b.Seeds = make([]int64, w)
	}
	b.Seeds = b.Seeds[:w]
	if cap(b.DVthV) < n*w {
		b.DVthV = make([]float64, n*w)
	}
	b.DVthV = b.DVthV[:n*w]
	if cap(b.DelayScale) < n*w {
		b.DelayScale = make([]float64, n*w)
	}
	b.DelayScale = b.DelayScale[:n*w]
	if cap(b.dies) < w {
		b.dies = make([]Die, w)
	}
	b.dies = b.dies[:w]
}

// SampleBlockInto draws one die per seed into blk's reused rows (nil
// allocates a fresh block) and returns it. Every lane is bit-identical to
// SampleInto of the same seed: each die's generator is re-seeded and drawn
// in exactly the scalar order, with the systematic-surface waves swept over
// the die's own hot row. The block form buys the population loop its SoA
// layout — a die-major scale matrix for the batched re-timer and zero-copy
// Die views for the scalar tail — not a different random stream.
func (s *Sampler) SampleBlockInto(blk *DieBlock, seeds []int64) *DieBlock {
	if blk == nil {
		blk = &DieBlock{}
	}
	n := len(s.pl.Design.Gates)
	blk.grow(n, len(seeds))
	copy(blk.Seeds, seeds)
	for d, seed := range seeds {
		dv := blk.DVthV[d*n : (d+1)*n]
		ds := blk.DelayScale[d*n : (d+1)*n]
		s.sampleRow(dv, ds, seed)
		blk.dies[d] = Die{Seed: seed, DVthV: dv, DelayScale: ds}
	}
	return blk
}
