package variation

import (
	"repro/internal/place"
	"repro/internal/tech"
)

// LeakModel is the batched form of Die.LeakageNW. The scalar path pays an
// exp-heavy tech.Process.LeakageFactorBias per gate per evaluation, and the
// tuning loop evaluates a die's leakage up to once per escalation on top of
// the unbiased baseline. The factorization is the separable form
// LeakageFactorBias computes: the subthreshold exponential splits into a
// per-die per-gate variation factor exp(-dvth/(n kT/q)) — computed once per
// die by SetDie — times a per-bias-level factor exp(-VthShift(vbs)/(n kT/q))
// — computed once per (placement, process) for the whole grid at
// construction — so evaluating any assignment is one multiply-add pass over
// the gates, bit-identical to the scalar path.
//
// Construction splits immutable from per-die state: the per-gate base
// leakage, the row map and the per-level tables never change and are shared
// by Clone; the per-die factors live in private scratch, so one LeakModel
// must not be used from more than one goroutine at a time. Population loops
// build one and Clone it per worker (YieldStream's Tuner pool does).
type LeakModel struct {
	proc *tech.Process
	grid tech.BiasGrid
	// Immutable after construction, shared across Clones.
	rowOf  []int
	baseNW []float64 // Cell.LeakNW per gate
	subW   []float64 // per level: SubthresholdFactor(Voltage(j))
	junc   []float64 // per level: JunctionFactor(Voltage(j))
	subShr float64   // 1 - GateLeakShare
	gls    float64   // GateLeakShare
	temp   float64   // TempLeakFactor
	// Per-die scratch.
	fsub []float64 // SubFactorDVth(DVthV[g]) of the die SetDie saw
}

// NewLeakModel precomputes the assignment-independent leakage structure of
// a placed design on a process: per-gate base leakage, the per-level bias
// factors of the whole grid, and the process constants.
func NewLeakModel(pl *place.Placement, proc *tech.Process) *LeakModel {
	n := len(pl.Design.Gates)
	lm := &LeakModel{
		proc:   proc,
		grid:   pl.Lib.Grid,
		rowOf:  pl.RowOf,
		baseNW: make([]float64, n),
		subShr: 1 - proc.GateLeakShare,
		gls:    proc.GateLeakShare,
		temp:   proc.TempLeakFactor(),
	}
	for g := 0; g < n; g++ {
		lm.baseNW[g] = pl.Design.Gates[g].Cell.LeakNW
	}
	levels := lm.grid.NumLevels()
	lm.subW = make([]float64, levels)
	lm.junc = make([]float64, levels)
	for j := 0; j < levels; j++ {
		v := lm.grid.Voltage(j)
		lm.subW[j] = proc.SubthresholdFactor(v)
		lm.junc[j] = proc.JunctionFactor(v)
	}
	return lm
}

// Clone returns a LeakModel sharing the immutable tables with private
// per-die scratch, the per-worker form of a shared model.
func (lm *LeakModel) Clone() *LeakModel {
	c := *lm
	c.fsub = nil
	return &c
}

// Process returns the process the tables were built for.
func (lm *LeakModel) Process() *tech.Process { return lm.proc }

// SetDie computes the per-gate variation factors of the die — the only
// exp-heavy pass, paid once per die; every LeakageNW/LeakageUniformNW call
// after it is multiply-adds. The die's DVthV must cover the placement's
// gates.
func (lm *LeakModel) SetDie(die *Die) {
	n := len(lm.baseNW)
	if cap(lm.fsub) < n {
		lm.fsub = make([]float64, n)
	}
	lm.fsub = lm.fsub[:n]
	for g, dv := range die.DVthV[:n] {
		lm.fsub[g] = lm.proc.SubFactorDVth(dv)
	}
}

// LeakageNW returns the SetDie die's total leakage in nanowatts under a
// row-level assignment (nil = no body bias), bit-identical to the scalar
// Die.LeakageNW.
func (lm *LeakModel) LeakageNW(assign []int) float64 {
	if assign == nil {
		return lm.LeakageUniformNW(0)
	}
	total := 0.0
	for g, f := range lm.fsub {
		j := assign[lm.rowOf[g]]
		total += lm.baseNW[g] * ((lm.subShr*(lm.subW[j]*f) + lm.gls + lm.junc[j]) * lm.temp)
	}
	return total
}

// LeakageBlockNW computes the unbiased total leakage of the listed block
// lanes in one pass each, appending to out in lane order. Per lane it is
// bit-identical to SetDie(blk.Die(d)) followed by LeakageNW(nil) — the same
// per-gate factorization evaluated in the same order — but fused: the
// variation factor feeds the multiply-add directly instead of being staged
// through the per-die scratch, so an unbiased lane costs one sweep instead
// of two and lm.fsub (the SetDie die) is left untouched. The batch yield
// kernel uses it for the no-bias lanes of a block, whose leakage is the only
// thing still owed after the batched re-timing.
func (lm *LeakModel) LeakageBlockNW(blk *DieBlock, lanes []int, out []float64) []float64 {
	n := len(lm.baseNW)
	w := lm.proc.SubthresholdFactor(0)
	j := lm.proc.JunctionFactor(0)
	for _, d := range lanes {
		row := blk.DVthV[d*blk.N : d*blk.N+n]
		total := 0.0
		for g, dv := range row {
			f := lm.proc.SubFactorDVth(dv)
			total += lm.baseNW[g] * ((lm.subShr*(w*f) + lm.gls + j) * lm.temp)
		}
		out = append(out, total)
	}
	return out
}

// LeakageUniformNW returns the SetDie die's total leakage with one bias
// voltage on every gate (the block-level form RBB recovery evaluates; vbs
// may be negative), bit-identical to the scalar loop over
// LeakageFactorBias(vbs, dvth).
func (lm *LeakModel) LeakageUniformNW(vbs float64) float64 {
	w := lm.proc.SubthresholdFactor(vbs)
	j := lm.proc.JunctionFactor(vbs)
	total := 0.0
	for g, f := range lm.fsub {
		total += lm.baseNW[g] * ((lm.subShr*(w*f) + lm.gls + j) * lm.temp)
	}
	return total
}
