// Package variation models process variability, timing sensors and the
// post-silicon tuning loop of the paper's section 3.1.
//
// Threshold-voltage variation is decomposed the standard way: a die-to-die
// offset, a spatially correlated within-die (systematic) surface, and
// per-gate random mismatch. Dies sampled from the model are re-timed with
// the STA engine, sensed by replica or in-situ monitors, and compensated by
// the core allocator under a sensed slowdown — the full loop the paper
// assumes around its clustering method. Temperature and NBTI aging provide
// the dynamic-variation axis ([4], [5]).
package variation

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Model describes threshold-voltage variability (all sigmas in millivolts).
type Model struct {
	// SigmaD2DmV is the die-to-die Vth sigma.
	SigmaD2DmV float64
	// SigmaSysmV is the spatially correlated within-die sigma.
	SigmaSysmV float64
	// SigmaRndmV is the per-gate random mismatch sigma.
	SigmaRndmV float64
	// CorrLenUM is the correlation length of the systematic surface.
	CorrLenUM float64
}

// Default returns a 45nm-class variability model.
func Default() Model {
	return Model{SigmaD2DmV: 20, SigmaSysmV: 12, SigmaRndmV: 8, CorrLenUM: 150}
}

// Die is one sampled die: a per-gate threshold shift and the derived delay
// multipliers.
type Die struct {
	Seed int64
	// DVthV is the per-gate threshold shift in volts (positive = slower).
	DVthV []float64
	// DelayScale multiplies each gate's nominal delay.
	DelayScale []float64
}

// Sample draws a die. The systematic surface is a sum of random-direction
// cosine waves with wavelengths near the correlation length, the standard
// cheap construction for spatially correlated variation. It is the one-shot
// form of Sampler.SampleInto (and produces bit-identical dies); loops
// sampling many dies of one placement should build a Sampler and reuse a
// Die buffer.
func (m Model) Sample(pl *place.Placement, proc *tech.Process, seed int64) *Die {
	return NewSampler(pl, proc, m).SampleInto(nil, seed)
}

// Timing runs STA at the die's corner. It rebuilds the timing graph every
// call; loops re-timing many dies of one placement should use a Retimer.
func (d *Die) Timing(pl *place.Placement) (*sta.Timing, error) {
	return sta.Analyze(pl, sta.Options{DelayScale: d.DelayScale})
}

// TimingWithBias runs STA with both the die's variation and a row-level
// body-bias assignment applied (one-shot; see Retimer.TimeWithBias for the
// batched form).
func (d *Die) TimingWithBias(pl *place.Placement, proc *tech.Process, assign []int) (*sta.Timing, error) {
	if len(assign) != pl.NumRows {
		return nil, errors.New("variation: assignment length mismatch")
	}
	grid := pl.Lib.Grid
	scale := make([]float64, len(d.DelayScale))
	for g := range scale {
		vbs := grid.Voltage(assign[pl.RowOf[g]])
		scale[g] = proc.DelayFactorBias(vbs, d.DVthV[g])
	}
	return sta.Analyze(pl, sta.Options{DelayScale: scale})
}

// LeakageNW returns the die's total leakage under an assignment (nil for no
// body bias), accounting for the per-gate variation, in nanowatts.
func (d *Die) LeakageNW(pl *place.Placement, proc *tech.Process, assign []int) float64 {
	grid := pl.Lib.Grid
	total := 0.0
	for g := range pl.Design.Gates {
		vbs := 0.0
		if assign != nil {
			vbs = grid.Voltage(assign[pl.RowOf[g]])
		}
		total += pl.Design.Gates[g].Cell.LeakNW * proc.LeakageFactorBias(vbs, d.DVthV[g])
	}
	return total
}

// Aged returns a copy of the die after NBTI-like aging: a t^0.16 threshold
// drift scaled by the activity factor, with 20% per-gate spread. It is the
// one-shot form of Sampler.AgedInto; controller loops that re-age one die
// repeatedly should reuse a buffer through a Sampler.
func (d *Die) Aged(proc *tech.Process, years, activity float64) *Die {
	if years <= 0 {
		return d
	}
	return agedInto(nil, d, rand.New(rand.NewSource(agingSeed(d.Seed))), proc, years, activity)
}

// AgingDVthV is the NBTI threshold drift in volts after the given years at
// the given activity factor (0..1): roughly 30 mV at ten years of full
// activity, following the usual t^0.16 power law.
func AgingDVthV(years, activity float64) float64 {
	if years <= 0 {
		return 0
	}
	const atTenYears = 0.030
	a := atTenYears / math.Pow(10, 0.16)
	return a * math.Pow(years, 0.16) * math.Max(0, math.Min(1, activity))
}
