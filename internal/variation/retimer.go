package variation

import (
	"errors"

	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

// Retimer re-times sampled dies of one placement through a shared
// sta.Analyzer with reusable scratch buffers: the delay-scale vector and the
// sta.Timing result are both recycled call to call, so a Monte-Carlo loop
// pays no per-die graph work and near-zero allocations. The Analyzer may be
// shared freely (it is immutable); the Retimer itself holds the mutable
// buffers and must not be used from more than one goroutine at a time —
// create one per worker (flow.MapWith does exactly that).
//
// Every Time* method returns the Retimer's single internal buffer: the
// result is only valid until the next Time* call on the same Retimer, so
// callers must copy out any scalars (DcritPS, sensed betas) they need
// across calls.
type Retimer struct {
	an    *sta.Analyzer
	buf   *sta.Timing
	scale []float64
}

// NewRetimer wraps a (possibly shared) Analyzer with private scratch
// buffers.
func NewRetimer(an *sta.Analyzer) *Retimer {
	return &Retimer{an: an, buf: &sta.Timing{}}
}

// Analyzer returns the shared STA engine.
func (rt *Retimer) Analyzer() *sta.Analyzer { return rt.an }

// Placement returns the placement being re-timed.
func (rt *Retimer) Placement() *place.Placement { return rt.an.Placement() }

// Time re-times the die at its sampled variation corner.
func (rt *Retimer) Time(die *Die) (*sta.Timing, error) {
	return rt.an.Run(die.DelayScale, rt.buf)
}

// TimeLight is Time through the Analyzer's Dcrit-only fast path: the result
// carries bit-identical GateDelayPS/ArrPS/TailPS/DcritPS but no extracted
// Paths. Population loops that only read the die's critical delay (yield
// tuning, RBB scans) use it; path-walking consumers need Time.
func (rt *Retimer) TimeLight(die *Die) (*sta.Timing, error) {
	return rt.an.RunLight(die.DelayScale, rt.buf)
}

// TimeWithBias re-times the die with a row-level body-bias assignment
// applied on top of its variation.
func (rt *Retimer) TimeWithBias(die *Die, proc *tech.Process, assign []int) (*sta.Timing, error) {
	scale, err := rt.biasScale(die, proc, assign)
	if err != nil {
		return nil, err
	}
	return rt.an.Run(scale, rt.buf)
}

// TimeWithBiasLight is TimeWithBias through the Dcrit-only fast path.
func (rt *Retimer) TimeWithBiasLight(die *Die, proc *tech.Process, assign []int) (*sta.Timing, error) {
	scale, err := rt.biasScale(die, proc, assign)
	if err != nil {
		return nil, err
	}
	return rt.an.RunLight(scale, rt.buf)
}

// TimeUniformBias re-times the die with one body-bias voltage applied to
// every gate (the block-level granularity RBB recovery scans).
func (rt *Retimer) TimeUniformBias(die *Die, proc *tech.Process, vbs float64) (*sta.Timing, error) {
	return rt.an.Run(rt.uniformScale(die, proc, vbs), rt.buf)
}

// TimeUniformBiasLight is TimeUniformBias through the Dcrit-only fast path.
func (rt *Retimer) TimeUniformBiasLight(die *Die, proc *tech.Process, vbs float64) (*sta.Timing, error) {
	return rt.an.RunLight(rt.uniformScale(die, proc, vbs), rt.buf)
}

// biasScale fills the scale scratch with the die's variation combined with
// a row-level bias assignment.
func (rt *Retimer) biasScale(die *Die, proc *tech.Process, assign []int) ([]float64, error) {
	pl := rt.an.Placement()
	if len(assign) != pl.NumRows {
		return nil, errors.New("variation: assignment length mismatch")
	}
	grid := pl.Lib.Grid
	scale := rt.scaleBuf(len(die.DelayScale))
	for g := range scale {
		vbs := grid.Voltage(assign[pl.RowOf[g]])
		scale[g] = proc.DelayFactorBias(vbs, die.DVthV[g])
	}
	return scale, nil
}

// uniformScale fills the scale scratch with the die's variation combined
// with one bias voltage on every gate.
func (rt *Retimer) uniformScale(die *Die, proc *tech.Process, vbs float64) []float64 {
	scale := rt.scaleBuf(len(die.DVthV))
	for g := range scale {
		scale[g] = proc.DelayFactorBias(vbs, die.DVthV[g])
	}
	return scale
}

func (rt *Retimer) scaleBuf(n int) []float64 {
	if cap(rt.scale) < n {
		rt.scale = make([]float64, n)
	}
	return rt.scale[:n]
}

// DieSeed derives the sampling seed of die number `die` in a study seeded
// with `seed`. The splitmix64 finalizer both decorrelates the per-die rand
// streams (a linear seed stride hands near-identical generator states to
// adjacent dies) and ties each die to its index alone, so a study's
// population is byte-identical at any worker count or scheduling order.
func DieSeed(seed int64, die int) int64 {
	return splitmix64(uint64(seed) + uint64(die)*0x9e3779b97f4a7c15)
}

// splitmix64 is the splitmix64 finalizer, the mixing core of DieSeed and
// the sensor noise streams.
func splitmix64(z uint64) int64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
