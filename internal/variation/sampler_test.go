package variation

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/sta"
	"repro/internal/tech"
)

func newAnalyzer(t *testing.T, pl *place.Placement) *sta.Analyzer {
	t.Helper()
	an, err := sta.NewAnalyzer(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// referenceSample is the pre-Sampler gate-major sampling loop, kept
// verbatim as the differential reference: per gate, the systematic waves
// are accumulated innermost. The Sampler sweeps wave-major into the die
// buffer instead, which must not move a single bit.
func referenceSample(m Model, pl *place.Placement, proc *tech.Process, seed int64) *Die {
	rng := rand.New(rand.NewSource(seed))
	n := len(pl.Design.Gates)
	die := &Die{
		Seed:       seed,
		DVthV:      make([]float64, n),
		DelayScale: make([]float64, n),
	}
	d2d := rng.NormFloat64() * m.SigmaD2DmV / 1000

	const waves = 6
	type wave struct{ kx, ky, phase, amp float64 }
	var ws []wave
	if m.SigmaSysmV > 0 && m.CorrLenUM > 0 {
		amp := m.SigmaSysmV / 1000 * math.Sqrt(2/float64(waves))
		for i := 0; i < waves; i++ {
			theta := rng.Float64() * 2 * math.Pi
			lambda := m.CorrLenUM * (0.7 + 0.6*rng.Float64())
			ws = append(ws, wave{
				kx:    2 * math.Pi / lambda * math.Cos(theta),
				ky:    2 * math.Pi / lambda * math.Sin(theta),
				phase: rng.Float64() * 2 * math.Pi,
				amp:   amp,
			})
		}
	}

	for g := 0; g < n; g++ {
		x, y := pl.GateCenter(netlist.GateID(g))
		sys := 0.0
		for _, w := range ws {
			sys += w.amp * math.Cos(w.kx*x+w.ky*y+w.phase)
		}
		dvth := d2d + sys + rng.NormFloat64()*m.SigmaRndmV/1000
		die.DVthV[g] = dvth
		die.DelayScale[g] = proc.DelayFactorDVth(dvth)
	}
	return die
}

func requireDieEqual(tb testing.TB, want, got *Die, label string) {
	tb.Helper()
	if want.Seed != got.Seed {
		tb.Fatalf("%s: seed %d, want %d", label, got.Seed, want.Seed)
	}
	if len(want.DVthV) != len(got.DVthV) || len(want.DelayScale) != len(got.DelayScale) {
		tb.Fatalf("%s: length mismatch", label)
	}
	for g := range want.DVthV {
		if want.DVthV[g] != got.DVthV[g] {
			tb.Fatalf("%s: DVthV[%d] = %v, want %v", label, g, got.DVthV[g], want.DVthV[g])
		}
		if want.DelayScale[g] != got.DelayScale[g] {
			tb.Fatalf("%s: DelayScale[%d] = %v, want %v", label, g, got.DelayScale[g], want.DelayScale[g])
		}
	}
}

// TestSampleIntoMatchesReference is the differential harness of the batched
// sampler: SampleInto into a dirty, continually reused buffer — and
// Model.Sample, which now rides it — must reproduce the pre-refactor
// gate-major loop bit for bit, across models with and without a systematic
// component.
func TestSampleIntoMatchesReference(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	models := []Model{
		Default(),
		{SigmaD2DmV: 30, SigmaSysmV: 0, SigmaRndmV: 5, CorrLenUM: 150}, // no waves
		{SigmaD2DmV: 0, SigmaSysmV: 25, SigmaRndmV: 0, CorrLenUM: 40},
	}
	for mi, m := range models {
		smp := NewSampler(pl, proc, m)
		var buf *Die
		for i := 0; i < 6; i++ {
			seed := DieSeed(int64(mi), i)
			want := referenceSample(m, pl, proc, seed)
			buf = smp.SampleInto(buf, seed)
			requireDieEqual(t, want, buf, "SampleInto")
			requireDieEqual(t, want, m.Sample(pl, proc, seed), "Model.Sample")
		}
	}
}

// TestSamplerCloneIndependence: clones share geometry but not generator
// state — interleaved draws on a clone must not perturb the original's
// population.
func TestSamplerCloneIndependence(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	m := Default()
	smp := NewSampler(pl, proc, m)
	cl := smp.Clone()
	want7 := m.Sample(pl, proc, 7)
	want9 := m.Sample(pl, proc, 9)
	a := smp.SampleInto(nil, 7)
	b := cl.SampleInto(nil, 9) // interleaved on the clone
	requireDieEqual(t, want9, b, "clone")
	requireDieEqual(t, want7, a, "original before clone draw")
	requireDieEqual(t, want7, smp.SampleInto(a, 7), "original after clone draw")
}

// TestAgedIntoMatchesAged: the buffer-reusing aging form must be
// bit-identical to Die.Aged, including in-place aging and the years<=0
// copy-through.
func TestAgedIntoMatchesAged(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	m := Default()
	smp := NewSampler(pl, proc, m)
	var buf *Die
	for i := 0; i < 4; i++ {
		die := m.Sample(pl, proc, DieSeed(3, i))
		want := die.Aged(proc, 10, 0.8)
		buf = smp.AgedInto(buf, die, 10, 0.8)
		requireDieEqual(t, want, buf, "AgedInto")

		// years <= 0 must be a copy of the unaged die.
		fresh := smp.AgedInto(nil, die, 0, 0.8)
		requireDieEqual(t, die, fresh, "AgedInto years=0")

		// In-place aging: out == d.
		inPlace := m.Sample(pl, proc, DieSeed(3, i))
		requireDieEqual(t, want, smp.AgedInto(inPlace, inPlace, 10, 0.8), "AgedInto in place")
	}
}

// TestSampleIntoAllocFree: a warmed-up Sampler samples and ages dies with
// zero allocations — the property that makes a million-die stream a few
// array passes per die.
func TestSampleIntoAllocFree(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	smp := NewSampler(pl, proc, Default())
	die := smp.SampleInto(nil, 1)
	aged := smp.AgedInto(nil, die, 5, 0.5)
	i := 0
	if n := testing.AllocsPerRun(20, func() {
		i++
		smp.SampleInto(die, DieSeed(1, i))
		smp.AgedInto(aged, die, 5, 0.5)
	}); n != 0 {
		t.Errorf("warmed-up SampleInto+AgedInto allocate %v/op, want 0", n)
	}
}

// TestReplicaSensorNoisePerDie pins the decorrelation fix: a fixed sensor
// seed must still give a deterministic reading per die, but two dies must
// not see the same noise stream (the pre-fix sensor replayed one stream on
// every die, making measurement error perfectly correlated across the
// population).
func TestReplicaSensorNoisePerDie(t *testing.T) {
	pl := placed(t, "c1355")
	proc := tech.Default45nm()
	an := newAnalyzer(t, pl)
	nom, err := an.Run(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRetimer(an)
	s := ReplicaSensor{Replicas: 8, NoisePct: 0.02, Seed: 5}
	m := Model{SigmaD2DmV: 25, SigmaSysmV: 0, SigmaRndmV: 0}

	// One physical die, re-timed twice: identical readings (determinism).
	die := m.Sample(pl, proc, DieSeed(1, 0))
	tm, err := rt.TimeLight(die)
	if err != nil {
		t.Fatal(err)
	}
	r1 := s.MeasureBeta(nom, tm, die.Seed)
	if r2 := s.MeasureBeta(nom, tm, die.Seed); r2 != r1 {
		t.Errorf("re-measuring one die drifted: %v then %v", r1, r2)
	}

	// Two dies with *identical* variation but different seeds: without
	// per-die noise the readings would be exactly equal, since the noise
	// stream and the timing are both the same.
	other := *die
	other.Seed = DieSeed(1, 1)
	if r3 := s.MeasureBeta(nom, tm, other.Seed); r3 == r1 {
		t.Errorf("two dies saw identical measurement noise (%v): streams are correlated", r1)
	}

	// And across a real population, readings must not be a deterministic
	// function of the true slowdown alone: sample several dies and check
	// the noise actually differs from the noiseless reading.
	noiseless := ReplicaSensor{Replicas: 8, NoisePct: 0, Seed: 5}
	varied := false
	for i := 0; i < 6; i++ {
		d := m.Sample(pl, proc, DieSeed(9, i))
		dtm, err := rt.TimeLight(d)
		if err != nil {
			t.Fatal(err)
		}
		if s.MeasureBeta(nom, dtm, d.Seed) != noiseless.MeasureBeta(nom, dtm, d.Seed) {
			varied = true
		}
	}
	if !varied {
		t.Error("noisy sensor never diverged from the noiseless reading")
	}
}
