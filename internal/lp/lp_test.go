package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) Result {
	t.Helper()
	r, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for i, row := range p.A {
		v := 0.0
		for j := range row {
			v += row[j] * x[j]
		}
		switch p.Rel[i] {
		case LE:
			if v > p.B[i]+1e-6 {
				t.Errorf("row %d: %f > %f", i, v, p.B[i])
			}
		case GE:
			if v < p.B[i]-1e-6 {
				t.Errorf("row %d: %f < %f", i, v, p.B[i])
			}
		case EQ:
			if math.Abs(v-p.B[i]) > 1e-6 {
				t.Errorf("row %d: %f != %f", i, v, p.B[i])
			}
		}
	}
	for j := range x {
		if x[j] < p.lower(j)-1e-6 || x[j] > p.upper(j)+1e-6 {
			t.Errorf("x[%d] = %f outside [%g, %g]", j, x[j], p.lower(j), p.upper(j))
		}
	}
}

func TestTextbookLP(t *testing.T) {
	// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 => min -3x-5y, opt (2,6), -36.
	p := &Problem{
		C: []float64{-3, -5},
		A: [][]float64{
			{1, 0},
			{0, 2},
			{3, 2},
		},
		Rel: []Rel{LE, LE, LE},
		B:   []float64{4, 12, 18},
	}
	r := solveOK(t, p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if math.Abs(r.Obj+36) > 1e-6 {
		t.Errorf("obj = %f, want -36", r.Obj)
	}
	if math.Abs(r.X[0]-2) > 1e-6 || math.Abs(r.X[1]-6) > 1e-6 {
		t.Errorf("x = %v, want (2,6)", r.X)
	}
	checkFeasible(t, p, r.X)
}

func TestEqualityAndGE(t *testing.T) {
	// min x+2y s.t. x+y = 10, x >= 3, y >= 2 -> x=8, y=2, obj 12.
	p := &Problem{
		C:   []float64{1, 2},
		A:   [][]float64{{1, 1}, {1, 0}, {0, 1}},
		Rel: []Rel{EQ, GE, GE},
		B:   []float64{10, 3, 2},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.Obj-12) > 1e-6 {
		t.Fatalf("status=%v obj=%f, want optimal 12", r.Status, r.Obj)
	}
	checkFeasible(t, p, r.X)
}

func TestUpperBoundsRespected(t *testing.T) {
	// min -x s.t. x <= 100, with variable bound u = 3: answer 3.
	p := &Problem{
		C:   []float64{-1},
		A:   [][]float64{{1}},
		Rel: []Rel{LE},
		B:   []float64{100},
		U:   []float64{3},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.X[0]-3) > 1e-9 {
		t.Fatalf("x = %v, want 3", r.X)
	}
}

func TestBoundFlipPath(t *testing.T) {
	// All variables bounded, optimum forces several to their upper bound.
	p := &Problem{
		C:   []float64{-1, -1, -1},
		A:   [][]float64{{1, 1, 1}},
		Rel: []Rel{LE},
		B:   []float64{2.5},
		U:   []float64{1, 1, 1},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.Obj+2.5) > 1e-6 {
		t.Fatalf("obj = %f, want -2.5", r.Obj)
	}
	checkFeasible(t, p, r.X)
}

func TestNonzeroLowerBounds(t *testing.T) {
	// min x+y with x,y in [2,5], x+y >= 6: obj 6 (many optima).
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}},
		Rel: []Rel{GE},
		B:   []float64{6},
		L:   []float64{2, 2},
		U:   []float64{5, 5},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.Obj-6) > 1e-6 {
		t.Fatalf("status=%v obj=%f, want optimal 6", r.Status, r.Obj)
	}
	checkFeasible(t, p, r.X)
}

func TestInfeasible(t *testing.T) {
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		Rel: []Rel{LE, GE},
		B:   []float64{1, 2},
	}
	r := solveOK(t, p)
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestInfeasibleByBounds(t *testing.T) {
	// x <= 1 but x must be >= 2 via its lower bound.
	p := &Problem{
		C:   []float64{1},
		A:   [][]float64{{1}},
		Rel: []Rel{LE},
		B:   []float64{1},
		L:   []float64{2},
		U:   []float64{5},
	}
	r := solveOK(t, p)
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := &Problem{
		C:   []float64{-1},
		A:   [][]float64{{-1}},
		Rel: []Rel{LE},
		B:   []float64{0},
	}
	r := solveOK(t, p)
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	p := &Problem{C: []float64{1, -2}, U: []float64{10, 7}}
	r := solveOK(t, p)
	if r.Status != Optimal || r.X[0] != 0 || r.X[1] != 7 {
		t.Fatalf("got %v %v", r.Status, r.X)
	}
	p2 := &Problem{C: []float64{-1}}
	r2 := solveOK(t, p2)
	if r2.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r2.Status)
	}
}

func TestDegenerateRedundantRows(t *testing.T) {
	p := &Problem{
		C:   []float64{1, 1},
		A:   [][]float64{{1, 1}, {1, 1}, {2, 2}},
		Rel: []Rel{GE, GE, GE},
		B:   []float64{4, 4, 8},
		U:   []float64{10, 10},
	}
	r := solveOK(t, p)
	if r.Status != Optimal || math.Abs(r.Obj-4) > 1e-6 {
		t.Fatalf("status=%v obj=%f, want optimal 4", r.Status, r.Obj)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(&Problem{C: []float64{1}, A: [][]float64{{1, 2}}, Rel: []Rel{LE}, B: []float64{1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := Solve(&Problem{C: []float64{1}, L: []float64{3}, U: []float64{1}}); err == nil {
		t.Error("empty bound interval accepted")
	}
}

// bruteForce finds the optimum by enumerating basic feasible points: all
// choices of n active constraints among rows and bounds, solving the n x n
// system, and keeping the best feasible solution.
func bruteForce(p *Problem) (float64, bool) {
	n := len(p.C)
	type constraintRow struct {
		a []float64
		b float64
	}
	var cons []constraintRow
	for i, row := range p.A {
		cons = append(cons, constraintRow{row, p.B[i]})
	}
	for j := 0; j < n; j++ {
		lo := make([]float64, n)
		lo[j] = 1
		cons = append(cons, constraintRow{lo, p.lower(j)})
		if !math.IsInf(p.upper(j), 1) {
			hi := make([]float64, n)
			hi[j] = 1
			cons = append(cons, constraintRow{hi, p.upper(j)})
		}
	}
	best := math.Inf(1)
	found := false
	idx := make([]int, n)
	var rec func(start, k int)
	rec = func(start, k int) {
		if k == n {
			// Solve the active system by Gaussian elimination.
			a := make([][]float64, n)
			for r := 0; r < n; r++ {
				a[r] = append(append([]float64{}, cons[idx[r]].a...), cons[idx[r]].b)
			}
			x, ok := gauss(a)
			if !ok {
				return
			}
			feas := true
			for i, row := range p.A {
				v := 0.0
				for j := range row {
					v += row[j] * x[j]
				}
				switch p.Rel[i] {
				case LE:
					feas = feas && v <= p.B[i]+1e-7
				case GE:
					feas = feas && v >= p.B[i]-1e-7
				case EQ:
					feas = feas && math.Abs(v-p.B[i]) <= 1e-7
				}
			}
			for j := 0; j < n; j++ {
				feas = feas && x[j] >= p.lower(j)-1e-7 && x[j] <= p.upper(j)+1e-7
			}
			if feas {
				obj := 0.0
				for j := 0; j < n; j++ {
					obj += p.C[j] * x[j]
				}
				if obj < best {
					best = obj
					found = true
				}
			}
			return
		}
		for i := start; i < len(cons); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return best, found
}

func gauss(a [][]float64) ([]float64, bool) {
	n := len(a)
	for col := 0; col < n; col++ {
		piv := col
		for r := col; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-10 {
			return nil, false
		}
		a[col], a[piv] = a[piv], a[col]
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		x[r] = a[r][n] / a[r][r]
	}
	return x, true
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		p := &Problem{
			C:   make([]float64, n),
			A:   make([][]float64, m),
			Rel: make([]Rel, m),
			B:   make([]float64, m),
			U:   make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = float64(rng.Intn(11) - 5)
			p.U[j] = float64(1 + rng.Intn(5))
		}
		// A feasible point inside the box guarantees feasibility.
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * p.U[j]
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			v := 0.0
			for j := 0; j < n; j++ {
				p.A[i][j] = float64(rng.Intn(7) - 3)
				v += p.A[i][j] * x0[j]
			}
			if rng.Intn(2) == 0 {
				p.Rel[i] = LE
				p.B[i] = v + rng.Float64()
			} else {
				p.Rel[i] = GE
				p.B[i] = v - rng.Float64()
			}
		}
		r := solveOK(t, p)
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v on a feasible bounded problem", trial, r.Status)
		}
		checkFeasible(t, p, r.X)
		want, ok := bruteForce(p)
		if !ok {
			t.Fatalf("trial %d: oracle found no vertex", trial)
		}
		if math.Abs(r.Obj-want) > 1e-5 {
			t.Fatalf("trial %d: simplex %f vs oracle %f", trial, r.Obj, want)
		}
	}
}

func TestEqualityAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(3)
		p := &Problem{
			C:   make([]float64, n),
			A:   make([][]float64, 2),
			Rel: []Rel{EQ, LE},
			B:   make([]float64, 2),
			U:   make([]float64, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = float64(rng.Intn(9) - 4)
			p.U[j] = float64(1 + rng.Intn(4))
		}
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * p.U[j]
		}
		for i := 0; i < 2; i++ {
			p.A[i] = make([]float64, n)
			v := 0.0
			for j := 0; j < n; j++ {
				p.A[i][j] = float64(rng.Intn(5) - 2)
				v += p.A[i][j] * x0[j]
			}
			p.B[i] = v
			if p.Rel[i] == LE {
				p.B[i] += rng.Float64()
			}
		}
		r := solveOK(t, p)
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		checkFeasible(t, p, r.X)
		want, ok := bruteForce(p)
		if ok && math.Abs(r.Obj-want) > 1e-5 {
			t.Fatalf("trial %d: simplex %f vs oracle %f", trial, r.Obj, want)
		}
	}
}

func TestLargeRandomSparseLP(t *testing.T) {
	// A bigger instance for robustness: 150 rows x 120 bounded vars.
	rng := rand.New(rand.NewSource(17))
	n, m := 120, 150
	p := &Problem{
		C:   make([]float64, n),
		A:   make([][]float64, m),
		Rel: make([]Rel, m),
		B:   make([]float64, m),
		U:   make([]float64, n),
	}
	x0 := make([]float64, n)
	for j := 0; j < n; j++ {
		p.C[j] = rng.Float64()*4 - 2
		p.U[j] = 1
		x0[j] = rng.Float64()
	}
	for i := 0; i < m; i++ {
		p.A[i] = make([]float64, n)
		v := 0.0
		for k := 0; k < 6; k++ {
			j := rng.Intn(n)
			p.A[i][j] = rng.Float64()*2 - 1
		}
		for j := 0; j < n; j++ {
			v += p.A[i][j] * x0[j]
		}
		if rng.Intn(2) == 0 {
			p.Rel[i], p.B[i] = LE, v+rng.Float64()*0.5
		} else {
			p.Rel[i], p.B[i] = GE, v-rng.Float64()*0.5
		}
	}
	r := solveOK(t, p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	checkFeasible(t, p, r.X)
	// Optimality sanity: no feasible random perturbation improves.
	obj0 := 0.0
	for j := range x0 {
		obj0 += p.C[j] * x0[j]
	}
	if r.Obj > obj0+1e-6 {
		t.Errorf("optimum %f worse than interior point %f", r.Obj, obj0)
	}
}
