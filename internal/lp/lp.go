// Package lp is a dense linear-programming solver: a two-phase primal
// simplex with bounded variables and Bland anti-cycling. It plays the role
// of lp_solve in the paper's flow, as the relaxation engine under the
// branch-and-bound ILP solver.
//
// Problems are stated as
//
//	minimize    C.x
//	subject to  A x (<=|>=|=) B,   L <= x <= U
//
// Variable bounds are handled implicitly by the simplex (nonbasic variables
// may sit at either bound), which keeps the tableau at the constraint count
// rather than adding a row per bound — essential for the FBB instances whose
// x_ij variables are all bounded binaries in the relaxation.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel uint8

// Constraint relations.
const (
	LE Rel = iota // <=
	GE            // >=
	EQ            // =
)

// Status reports the outcome of a solve.
type Status uint8

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	}
	return "unknown"
}

// Problem is an LP instance. L and U may be nil (defaults: 0 and +Inf).
type Problem struct {
	C   []float64
	A   [][]float64
	Rel []Rel
	B   []float64
	L   []float64
	U   []float64
}

// Result is a solved LP.
type Result struct {
	Status Status
	// X is the optimal point (valid when Status == Optimal).
	X []float64
	// Obj is C.X.
	Obj float64
	// Iters counts simplex pivots across both phases.
	Iters int
}

const (
	tolPivot = 1e-9
	tolCost  = 1e-9
	tolFeas  = 1e-7
)

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	n := len(p.C)
	if len(p.A) != len(p.B) || len(p.A) != len(p.Rel) {
		return fmt.Errorf("lp: %d rows, %d rhs, %d relations", len(p.A), len(p.B), len(p.Rel))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	if p.L != nil && len(p.L) != n {
		return fmt.Errorf("lp: L length %d, want %d", len(p.L), n)
	}
	if p.U != nil && len(p.U) != n {
		return fmt.Errorf("lp: U length %d, want %d", len(p.U), n)
	}
	for j := 0; j < n; j++ {
		if p.lower(j) > p.upper(j)+tolFeas {
			return fmt.Errorf("lp: variable %d has empty bound interval [%g, %g]", j, p.lower(j), p.upper(j))
		}
	}
	return nil
}

func (p *Problem) lower(j int) float64 {
	if p.L == nil {
		return 0
	}
	return p.L[j]
}

func (p *Problem) upper(j int) float64 {
	if p.U == nil {
		return math.Inf(1)
	}
	return p.U[j]
}

type varStatus uint8

const (
	atLower varStatus = iota
	atUpper
	isBasic
)

// simplex holds the working state. All variables are shifted so their lower
// bound is zero; column order is [structural | slacks | artificials].
type simplex struct {
	m, n    int // rows, structural count
	nCols   int
	T       [][]float64 // m x nCols tableau (B^-1 A)
	xB      []float64   // basic variable values
	basis   []int       // basic column per row
	stat    []varStatus
	ub      []float64 // shifted upper bounds per column
	d       []float64 // reduced costs
	cost    []float64 // phase cost vector
	act     []int     // columns with ub > 0, ascending (see rebuildActive)
	nz      []int     // per-pivot scratch: active nonzeros of the pivot row
	objVal  float64
	artBase int
	iters   int
	bland   bool
	stall   int
}

// Solve optimizes the problem.
func Solve(p *Problem) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	n := len(p.C)
	m := len(p.A)

	// Trivial case: no constraints — each variable goes to its cheap bound.
	if m == 0 {
		x := make([]float64, n)
		obj := 0.0
		for j := 0; j < n; j++ {
			switch {
			case p.C[j] > 0:
				x[j] = p.lower(j)
			case p.C[j] < 0:
				if math.IsInf(p.upper(j), 1) {
					return Result{Status: Unbounded}, nil
				}
				x[j] = p.upper(j)
			default:
				x[j] = p.lower(j)
			}
			obj += p.C[j] * x[j]
		}
		return Result{Status: Optimal, X: x, Obj: obj}, nil
	}

	s, err := newSimplex(p)
	if err != nil {
		return Result{}, err
	}

	// Phase 1: minimize the artificial sum.
	if s.artBase < s.nCols {
		s.setPhase1Cost()
		st := s.run(maxIters(m, s.nCols))
		if st == IterLimit {
			return Result{Status: IterLimit, Iters: s.iters}, nil
		}
		if s.objVal > tolFeas {
			return Result{Status: Infeasible, Iters: s.iters}, nil
		}
		// Freeze artificials at zero so phase 2 cannot reuse them.
		for j := s.artBase; j < s.nCols; j++ {
			s.ub[j] = 0
		}
	}

	// Phase 2: the real objective.
	s.setPhase2Cost(p)
	st := s.run(maxIters(m, s.nCols))
	if st != Optimal {
		return Result{Status: st, Iters: s.iters}, nil
	}

	// Recover the solution in original coordinates.
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		x[j] = p.lower(j) + s.value(j)
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Obj: obj, Iters: s.iters}, nil
}

func maxIters(m, n int) int { return 200*(m+n) + 20000 }

// newSimplex builds the initial tableau: slack basis where possible,
// artificial variables for >= and = rows.
func newSimplex(p *Problem) (*simplex, error) {
	n := len(p.C)
	m := len(p.A)

	// Shift x by L and normalize rows to b >= 0.
	type rowSpec struct {
		a   []float64
		b   float64
		rel Rel
	}
	rows := make([]rowSpec, m)
	for i := 0; i < m; i++ {
		a := make([]float64, n)
		copy(a, p.A[i])
		b := p.B[i]
		for j := 0; j < n; j++ {
			l := p.lower(j)
			if l != 0 {
				b -= a[j] * l
			}
		}
		rel := p.Rel[i]
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowSpec{a: a, b: b, rel: rel}
	}

	nSlack := 0
	nArt := 0
	for _, r := range rows {
		if r.rel != EQ {
			nSlack++
		}
		if r.rel != LE {
			nArt++
		}
	}
	nCols := n + nSlack + nArt
	s := &simplex{
		m:       m,
		n:       n,
		nCols:   nCols,
		T:       make([][]float64, m),
		xB:      make([]float64, m),
		basis:   make([]int, m),
		stat:    make([]varStatus, nCols),
		ub:      make([]float64, nCols),
		d:       make([]float64, nCols),
		cost:    make([]float64, nCols),
		artBase: n + nSlack,
	}
	for j := 0; j < n; j++ {
		s.ub[j] = p.upper(j) - p.lower(j)
		if s.ub[j] < 0 {
			return nil, errors.New("lp: inconsistent bounds")
		}
	}
	for j := n; j < nCols; j++ {
		s.ub[j] = math.Inf(1)
	}

	slack := n
	art := s.artBase
	for i, r := range rows {
		t := make([]float64, nCols)
		copy(t, r.a)
		switch r.rel {
		case LE:
			t[slack] = 1
			s.basis[i] = slack
			slack++
		case GE:
			t[slack] = -1
			slack++
			t[art] = 1
			s.basis[i] = art
			art++
		case EQ:
			t[art] = 1
			s.basis[i] = art
			art++
		}
		s.T[i] = t
		s.xB[i] = r.b
	}
	for i := range s.basis {
		s.stat[s.basis[i]] = isBasic
	}
	return s, nil
}

// value returns the current value of column j in shifted coordinates.
func (s *simplex) value(j int) float64 {
	switch s.stat[j] {
	case atLower:
		return 0
	case atUpper:
		return s.ub[j]
	}
	for i, bj := range s.basis {
		if bj == j {
			return s.xB[i]
		}
	}
	return 0
}

func (s *simplex) setPhase1Cost() {
	for j := range s.cost {
		s.cost[j] = 0
	}
	for j := s.artBase; j < s.nCols; j++ {
		s.cost[j] = 1
	}
	s.computeReducedCosts()
}

func (s *simplex) setPhase2Cost(p *Problem) {
	for j := range s.cost {
		s.cost[j] = 0
	}
	copy(s.cost[:s.n], p.C)
	s.computeReducedCosts()
}

// rebuildActive recollects the columns with room to move (ub > 0). A frozen
// column — a variable fixed by its bounds, or an artificial zeroed after
// phase 1 — can never be priced into the basis again, so nothing ever reads
// its tableau entries; dropping such columns from the pivot updates leaves
// them stale but shrinks every elimination to the live width. Called at each
// phase start, after any freezing, so the list is exact for the whole phase.
func (s *simplex) rebuildActive() {
	s.act = s.act[:0]
	for j := 0; j < s.nCols; j++ {
		if s.ub[j] > 0 {
			s.act = append(s.act, j)
		}
	}
}

// computeReducedCosts rebuilds d = c - c_B * T and the objective value from
// scratch (done at each phase start).
func (s *simplex) computeReducedCosts() {
	s.rebuildActive()
	for _, j := range s.act {
		s.d[j] = s.cost[j]
	}
	for i := 0; i < s.m; i++ {
		cb := s.cost[s.basis[i]]
		if cb == 0 {
			continue
		}
		row := s.T[i]
		for _, j := range s.act {
			s.d[j] -= cb * row[j]
		}
	}
	obj := 0.0
	for j := 0; j < s.nCols; j++ {
		obj += s.cost[j] * s.value(j)
	}
	s.objVal = obj
	s.bland = false
	s.stall = 0
}

// run iterates the bounded-variable simplex until optimality or a limit.
func (s *simplex) run(limit int) Status {
	for iter := 0; iter < limit; iter++ {
		q := s.price()
		if q < 0 {
			return Optimal
		}
		st := s.step(q)
		if st != Optimal {
			return st
		}
		s.iters++
	}
	return IterLimit
}

// price selects the entering column, or -1 at optimality. A nonbasic column
// improves the objective when it is at its lower bound with a negative
// reduced cost, or at its upper bound with a positive one.
func (s *simplex) price() int {
	best, bestScore := -1, tolCost
	for _, j := range s.act {
		if s.stat[j] == isBasic {
			continue
		}
		var score float64
		switch s.stat[j] {
		case atLower:
			score = -s.d[j]
		case atUpper:
			score = s.d[j]
		}
		if score <= tolCost {
			continue
		}
		if s.bland {
			return j
		}
		if score > bestScore {
			bestScore = score
			best = j
		}
	}
	return best
}

// step moves the entering variable q as far as its own bound or a basic
// variable's bound allows, then flips or pivots.
func (s *simplex) step(q int) Status {
	dir := 1.0
	if s.stat[q] == atUpper {
		dir = -1
	}

	// Ratio test: limit on the step length t >= 0.
	tMax := s.ub[q] // bound-to-bound flip distance
	leave := -1
	leaveToUpper := false
	for i := 0; i < s.m; i++ {
		y := dir * s.T[i][q]
		var lim float64
		var toUpper bool
		switch {
		case y > tolPivot:
			lim = s.xB[i] / y // basic falls to its lower bound (0)
		case y < -tolPivot:
			ubB := s.ub[s.basis[i]]
			if math.IsInf(ubB, 1) {
				continue
			}
			lim = (ubB - s.xB[i]) / (-y) // basic rises to its upper bound
			toUpper = true
		default:
			continue
		}
		if lim < 0 {
			lim = 0
		}
		if lim < tMax-tolPivot || (lim < tMax+tolPivot && leave >= 0 && s.bland && s.basis[i] < s.basis[leave]) {
			tMax = lim
			leave = i
			leaveToUpper = toUpper
		}
	}

	if math.IsInf(tMax, 1) {
		return Unbounded
	}

	// Objective change.
	delta := s.d[q] * dir * tMax
	if delta > -1e-12 {
		s.stall++
		if s.stall > 2*(s.m+s.nCols) {
			s.bland = true
		}
	} else {
		s.stall = 0
	}
	s.objVal += delta

	// Update basic values.
	for i := 0; i < s.m; i++ {
		s.xB[i] -= dir * s.T[i][q] * tMax
	}

	if leave < 0 {
		// Bound flip: q jumps to its other bound, basis unchanged.
		if s.stat[q] == atLower {
			s.stat[q] = atUpper
		} else {
			s.stat[q] = atLower
		}
		return Optimal
	}

	// Pivot: q enters the basis at its new value, basis[leave] exits.
	newVal := tMax
	if s.stat[q] == atUpper {
		newVal = s.ub[q] - tMax
	}
	out := s.basis[leave]
	if leaveToUpper {
		s.stat[out] = atUpper
	} else {
		s.stat[out] = atLower
	}
	s.stat[q] = isBasic
	s.basis[leave] = q
	s.xB[leave] = newVal

	// Gaussian elimination on the tableau and the reduced-cost row, over
	// the active columns only (frozen columns are never read again).
	piv := s.T[leave][q]
	row := s.T[leave]
	inv := 1 / piv
	nz := s.nz[:0] // active nonzeros of the normalized pivot row
	for _, j := range s.act {
		if row[j] == 0 {
			continue
		}
		row[j] *= inv
		nz = append(nz, j)
	}
	s.nz = nz
	for i := 0; i < s.m; i++ {
		if i == leave {
			continue
		}
		f := s.T[i][q]
		if f == 0 {
			continue
		}
		ri := s.T[i]
		for _, j := range nz {
			ri[j] -= f * row[j]
		}
		ri[q] = 0 // exact zero against round-off
	}
	f := s.d[q]
	if f != 0 {
		for _, j := range nz {
			s.d[j] -= f * row[j]
		}
		s.d[q] = 0
	}
	return Optimal
}
