// Package bbgen models the central body-bias generator and its distribution
// network (the paper's Figure 2): one on-die generator produces bias
// voltages on a fixed resolution grid (50 mV assumed in the paper, 32 mV
// demonstrated by Tschanz et al. [8]) and distributes up to two (vbsn, vbsp)
// pairs to each circuit block, steered by the blocks' timing-sensor flags.
// Generation, buffering and routing cost 2-3% of die area at block-level
// granularity per [8].
package bbgen

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tech"
)

// Generator is a central body-bias generator.
type Generator struct {
	// Proc supplies Vdd and the delay model used to pick compensating
	// levels.
	Proc *tech.Process
	// Grid is the output voltage grid.
	Grid tech.BiasGrid
	// MaxPairsPerBlock is the distribution limit per block (2).
	MaxPairsPerBlock int
	// AreaOverheadPct is the die-area cost of generation, buffers and
	// routing (2-3% per [8]).
	AreaOverheadPct float64
}

// New returns a generator on the default 50 mV grid.
func New(p *tech.Process) *Generator {
	return &Generator{
		Proc:             p,
		Grid:             tech.DefaultGrid(),
		MaxPairsPerBlock: 2,
		AreaOverheadPct:  2.5,
	}
}

// Pair returns the NMOS and PMOS bias voltages for a grid level, as routed:
// vbsn = vbs and vbsp = Vdd - vbs.
func (g *Generator) Pair(level int) (vbsn, vbsp float64) {
	return g.Grid.Pair(g.Proc.VddV, level)
}

// LevelFor returns the lowest grid level whose speed-up compensates a
// measured slowdown beta (delay factor <= 1/(1+beta)), or an error when the
// slowdown exceeds the generator's range. This is the selection a tuning
// controller performs when a block's timing sensor raises its flag.
func (g *Generator) LevelFor(beta float64) (int, error) {
	if beta <= 0 {
		return 0, nil
	}
	target := 1 / (1 + beta)
	for j := 0; j < g.Grid.NumLevels(); j++ {
		if g.Proc.DelayFactor(g.Grid.Voltage(j)) <= target {
			return j, nil
		}
	}
	return 0, fmt.Errorf("bbgen: slowdown %.1f%% beyond FBB range (max speed-up %.1f%%)",
		beta*100, g.Proc.Speedup(g.Grid.MaxV)*100)
}

// BlockRequest is one block's bias demand: the distinct non-NBB levels its
// row clusters need, plus a sensed timing flag (the Tc of Figure 2).
type BlockRequest struct {
	Name   string
	Levels []int
	Alarm  bool // the block's timing sensor fired
}

// Line is one routed bias pair.
type Line struct {
	Block      string
	Level      int
	VbsN, VbsP float64
}

// Plan is the distribution produced for a set of blocks.
type Plan struct {
	Lines []Line
	// DistinctLevels is the number of different voltages the generator
	// must produce simultaneously.
	DistinctLevels int
}

// Distribute routes bias pairs to the requesting blocks, enforcing the
// per-block pair limit. Blocks whose alarm is clear receive nothing.
func (g *Generator) Distribute(blocks []BlockRequest) (*Plan, error) {
	plan := &Plan{}
	distinct := map[int]struct{}{}
	for _, b := range blocks {
		if !b.Alarm {
			continue
		}
		pairs := 0
		for _, lv := range b.Levels {
			if lv <= 0 {
				continue
			}
			if lv >= g.Grid.NumLevels() {
				return nil, fmt.Errorf("bbgen: block %s requests level %d beyond the grid", b.Name, lv)
			}
			pairs++
			if pairs > g.MaxPairsPerBlock {
				return nil, fmt.Errorf("bbgen: block %s requests %d pairs, limit %d",
					b.Name, pairs, g.MaxPairsPerBlock)
			}
			n, p := g.Pair(lv)
			plan.Lines = append(plan.Lines, Line{Block: b.Name, Level: lv, VbsN: n, VbsP: p})
			distinct[lv] = struct{}{}
		}
	}
	plan.DistinctLevels = len(distinct)
	return plan, nil
}

// ResolutionLoss quantifies what a coarser generator grid costs: for a
// uniform distribution of required slowdowns in (0, betaMax], it returns the
// average leakage-factor excess of quantizing up to the given grid versus an
// ideal continuous generator. Used by the resolution ablation bench.
func ResolutionLoss(p *tech.Process, grid tech.BiasGrid, betaMax float64, samples int) (float64, error) {
	if samples < 1 || betaMax <= 0 {
		return 0, errors.New("bbgen: bad sampling parameters")
	}
	g := &Generator{Proc: p, Grid: grid, MaxPairsPerBlock: 2}
	total := 0.0
	counted := 0
	for i := 1; i <= samples; i++ {
		beta := betaMax * float64(i) / float64(samples)
		lv, err := g.LevelFor(beta)
		if err != nil {
			continue // beyond range at any resolution
		}
		// Ideal continuous vbs achieving exactly the needed speed-up.
		ideal := continuousVbsFor(p, beta)
		loss := p.LeakageFactor(grid.Voltage(lv)) - p.LeakageFactor(ideal)
		if loss < 0 {
			loss = 0
		}
		total += loss
		counted++
	}
	if counted == 0 {
		return 0, errors.New("bbgen: no compensatable samples")
	}
	return total / float64(counted), nil
}

// continuousVbsFor finds the exact vbs compensating beta by bisection.
func continuousVbsFor(p *tech.Process, beta float64) float64 {
	target := 1 / (1 + beta)
	lo, hi := 0.0, p.MaxSafeVbs
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if p.DelayFactor(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Min(hi, p.MaxSafeVbs)
}
