package bbgen

import (
	"math"
	"testing"

	"repro/internal/tech"
)

func gen() *Generator { return New(tech.Default45nm()) }

func TestPairVoltages(t *testing.T) {
	g := gen()
	n, p := g.Pair(0)
	if n != 0 || math.Abs(p-0.95) > 1e-12 {
		t.Errorf("level 0 pair = %v,%v; want 0, 0.95", n, p)
	}
	n, p = g.Pair(10)
	if math.Abs(n-0.5) > 1e-12 || math.Abs(p-0.45) > 1e-12 {
		t.Errorf("level 10 pair = %v,%v; want 0.5, 0.45", n, p)
	}
}

func TestLevelForCompensates(t *testing.T) {
	g := gen()
	for _, beta := range []float64{0.01, 0.05, 0.10, 0.15} {
		lv, err := g.LevelFor(beta)
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		// The chosen level must compensate...
		if f := g.Proc.DelayFactor(g.Grid.Voltage(lv)); f > 1/(1+beta)+1e-12 {
			t.Errorf("beta=%v: level %d under-compensates (factor %f)", beta, lv, f)
		}
		// ...and be minimal.
		if lv > 0 {
			if f := g.Proc.DelayFactor(g.Grid.Voltage(lv - 1)); f <= 1/(1+beta) {
				t.Errorf("beta=%v: level %d not minimal", beta, lv)
			}
		}
	}
	if lv, err := g.LevelFor(0); err != nil || lv != 0 {
		t.Error("no slowdown should need no bias")
	}
	if _, err := g.LevelFor(0.5); err == nil {
		t.Error("a 50% slowdown is beyond FBB range and must error")
	}
}

func TestDistribute(t *testing.T) {
	g := gen()
	plan, err := g.Distribute([]BlockRequest{
		{Name: "b1", Levels: []int{3, 7}, Alarm: true},
		{Name: "b2", Levels: []int{3}, Alarm: true},
		{Name: "b3", Levels: []int{9}, Alarm: false}, // no alarm: ignored
		{Name: "b4", Levels: []int{0, 5}, Alarm: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Lines) != 4 { // 3+7, 3, 5 (level 0 routes nothing)
		t.Errorf("lines = %d, want 4", len(plan.Lines))
	}
	if plan.DistinctLevels != 3 { // {3, 7, 5}
		t.Errorf("distinct levels = %d, want 3", plan.DistinctLevels)
	}
	for _, l := range plan.Lines {
		if math.Abs(l.VbsN+l.VbsP-g.Proc.VddV) > 1e-12 {
			t.Errorf("pair %v does not straddle Vdd", l)
		}
	}
}

func TestDistributeLimits(t *testing.T) {
	g := gen()
	if _, err := g.Distribute([]BlockRequest{
		{Name: "greedy", Levels: []int{1, 2, 3}, Alarm: true},
	}); err == nil {
		t.Error("three pairs for one block accepted")
	}
	if _, err := g.Distribute([]BlockRequest{
		{Name: "oob", Levels: []int{99}, Alarm: true},
	}); err == nil {
		t.Error("out-of-grid level accepted")
	}
}

func TestResolutionLoss(t *testing.T) {
	p := tech.Default45nm()
	fine := tech.BiasGrid{StepV: 0.025, MaxV: 0.5}
	def := tech.DefaultGrid()
	coarse := tech.BiasGrid{StepV: 0.1, MaxV: 0.5}
	lf, err := ResolutionLoss(p, fine, 0.12, 200)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := ResolutionLoss(p, def, 0.12, 200)
	if err != nil {
		t.Fatal(err)
	}
	lc, err := ResolutionLoss(p, coarse, 0.12, 200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("avg leakage-factor excess: 25mV=%.3f 50mV=%.3f 100mV=%.3f", lf, ld, lc)
	if !(lf < ld && ld < lc) {
		t.Errorf("coarser grids must lose more: %f %f %f", lf, ld, lc)
	}
	if _, err := ResolutionLoss(p, def, -1, 10); err == nil {
		t.Error("bad betaMax accepted")
	}
}
