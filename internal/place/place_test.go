package place

import (
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/gen"
	"repro/internal/netlist"
)

func placed(t *testing.T, name string) *Placement {
	t.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(d, l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEveryGatePlacedExactlyOnce(t *testing.T) {
	p := placed(t, "c1355")
	seen := make([]int, len(p.Design.Gates))
	for r, row := range p.Rows {
		for _, g := range row {
			seen[g]++
			if p.RowOf[g] != r {
				t.Errorf("gate %d: RowOf=%d but found in row %d", g, p.RowOf[g], r)
			}
		}
	}
	for g, c := range seen {
		if c != 1 {
			t.Errorf("gate %d placed %d times", g, c)
		}
	}
}

func TestNoOverlapsWithinRows(t *testing.T) {
	p := placed(t, "c3540")
	for _, row := range p.Rows {
		for i := 0; i+1 < len(row); i++ {
			a, b := row[i], row[i+1]
			endA := p.X[a] + p.Design.Gates[a].Cell.WidthUM(p.Lib)
			if endA > p.X[b]+1e-9 {
				t.Fatalf("gates %d and %d overlap: %f > %f", a, b, endA, p.X[b])
			}
		}
	}
}

func TestRowsFitDie(t *testing.T) {
	p := placed(t, "c5315")
	for r := range p.Rows {
		if p.RowUsedUM(r) > p.DieWidthUM+1e-9 {
			t.Errorf("row %d overflows die: %f > %f", r, p.RowUsedUM(r), p.DieWidthUM)
		}
		u := p.RowUtilization(r)
		if u < 0 || u > 1 {
			t.Errorf("row %d utilization %f out of range", r, u)
		}
	}
	// The die is square-ish by construction.
	aspect := p.DieWidthUM / p.DieHeightUM
	if aspect < 0.5 || aspect > 2.0 {
		t.Errorf("die aspect ratio %f not square-ish", aspect)
	}
}

func TestRowCountsTrackPaper(t *testing.T) {
	l := cell.Default()
	for _, bm := range gen.All() {
		d := bm.Build(l)
		p, err := Place(d, l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		dev := float64(p.NumRows-bm.PaperRows) / float64(bm.PaperRows)
		t.Logf("%-12s rows=%3d paper=%3d (%+.0f%%)", bm.Name, p.NumRows, bm.PaperRows, dev*100)
		if dev < -0.35 || dev > 0.35 {
			t.Errorf("%s: %d rows deviates >35%% from paper's %d", bm.Name, p.NumRows, bm.PaperRows)
		}
	}
}

func TestSpatialSlackOnEveryRow(t *testing.T) {
	// The paper's contact-cell insertion relies on free space in each
	// row; target utilization leaves >= ~20% slack.
	p := placed(t, "c7552")
	for r := range p.Rows {
		if len(p.Rows[r]) == 0 {
			continue
		}
		if u := p.RowUtilization(r); u > 0.90 {
			t.Errorf("row %d utilization %.2f leaves no room for contact cells", r, u)
		}
	}
}

func TestRefinementImprovesOrKeepsHPWL(t *testing.T) {
	l := cell.Default()
	d, err := gen.Build("c1355", l)
	if err != nil {
		t.Fatal(err)
	}
	// RefinePasses -1 normalizes to 0 (disabled).
	noRefine, err := Place(d, l, Options{RefinePasses: -1})
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Place(d, l, Options{RefinePasses: 4})
	if err != nil {
		t.Fatal(err)
	}
	if refined.TotalHPWL() > noRefine.TotalHPWL()+1e-6 {
		t.Errorf("refinement increased HPWL: %f -> %f", noRefine.TotalHPWL(), refined.TotalHPWL())
	}
}

func TestConeLocality(t *testing.T) {
	// Connected gates should sit close: the average driver-consumer row
	// distance must be a small fraction of the row count.
	p := placed(t, "c6288")
	totalDist, edges := 0.0, 0
	for g := range p.Design.Gates {
		for _, f := range p.Fanouts()[netlist.GateID(g)] {
			totalDist += math.Abs(float64(p.RowOf[g] - p.RowOf[f]))
			edges++
		}
	}
	avg := totalDist / float64(edges)
	if avg > float64(p.NumRows)/4 {
		t.Errorf("average fanout row distance %.2f too large for %d rows", avg, p.NumRows)
	}
}

func TestForceRows(t *testing.T) {
	l := cell.Default()
	d, err := gen.Build("c1355", l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(d, l, Options{ForceRows: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRows != 7 {
		t.Errorf("forced rows = %d, want 7", p.NumRows)
	}
}

func TestEmptyDesignRejected(t *testing.T) {
	l := cell.Default()
	if _, err := Place(&netlist.Design{Name: "empty"}, l, Options{}); err == nil {
		t.Error("empty design accepted")
	}
}

func TestNetHPWLPositiveForMultiPinNets(t *testing.T) {
	p := placed(t, "c1355")
	anyPositive := false
	for g := range p.Design.Gates {
		h := p.NetHPWL(netlist.GateID(g))
		if h < 0 {
			t.Fatalf("negative HPWL for gate %d", g)
		}
		if h > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("all nets have zero wirelength")
	}
}

func TestCentersMatchGateCenter(t *testing.T) {
	p := placed(t, "c1355")
	xs, ys := p.Centers()
	if len(xs) != len(p.Design.Gates) || len(ys) != len(p.Design.Gates) {
		t.Fatalf("Centers length %d/%d, want %d", len(xs), len(ys), len(p.Design.Gates))
	}
	for g := range p.Design.Gates {
		x, y := p.GateCenter(netlist.GateID(g))
		if xs[g] != x || ys[g] != y {
			t.Fatalf("gate %d: Centers (%v,%v), GateCenter (%v,%v)", g, xs[g], ys[g], x, y)
		}
	}
	// The cache is computed once and shared.
	xs2, ys2 := p.Centers()
	if &xs2[0] != &xs[0] || &ys2[0] != &ys[0] {
		t.Error("Centers rebuilt the cached slices")
	}
	if n := testing.AllocsPerRun(10, func() { p.Centers() }); n != 0 {
		t.Errorf("cached Centers allocates %v/op, want 0", n)
	}
}
