// Package place implements the row-based standard-cell placement the paper's
// methodology starts from ("we start with a placed design, which can be
// abstracted as a set of N rows").
//
// The placer orders gates by logic-cone traversal from the primary outputs,
// which clusters connected logic, then fills rows serpentine-fashion on a
// square die at a target utilization. Cone locality matters: it is what
// concentrates timing-critical gates in a few rows, the property the paper's
// row-level clustering exploits. Remaining row space is spread uniformly
// between cells, providing the spatial slack the body-bias contact cells
// need (section 3.3 of the paper).
package place

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/cell"
	"repro/internal/netlist"
)

// Options control placement.
type Options struct {
	// UtilTarget is the row utilization target (default 0.72).
	UtilTarget float64
	// RefinePasses is the number of intra-row swap refinement passes
	// (default 2).
	RefinePasses int
	// ForceRows overrides the computed row count when > 0.
	ForceRows int
}

func (o *Options) setDefaults() {
	if o.UtilTarget <= 0 || o.UtilTarget > 1 {
		o.UtilTarget = 0.72
	}
	if o.RefinePasses < 0 {
		o.RefinePasses = 0
	} else if o.RefinePasses == 0 {
		o.RefinePasses = 2
	}
}

// Placement is a placed design.
type Placement struct {
	Design *netlist.Design
	Lib    *cell.Library

	// NumRows is N, the number of standard-cell rows.
	NumRows int
	// DieWidthUM and DieHeightUM are the core dimensions.
	DieWidthUM  float64
	DieHeightUM float64
	// Rows lists the gates of each row in left-to-right order.
	Rows [][]netlist.GateID
	// RowOf maps a gate to its row.
	RowOf []int
	// X is the left edge of each gate in micrometres; Y its row bottom.
	X, Y []float64

	rowUsedUM []float64
	fanouts   [][]netlist.GateID
	poOf      [][]int // gate -> indices of POs it drives

	centersOnce sync.Once
	centerX     []float64
	centerY     []float64
}

// Place places the design.
func Place(d *netlist.Design, lib *cell.Library, opts Options) (*Placement, error) {
	opts.setDefaults()
	n := len(d.Gates)
	if n == 0 {
		return nil, errors.New("place: empty design")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}

	totalW := 0.0
	for i := range d.Gates {
		totalW += d.Gates[i].Cell.WidthUM(lib)
	}

	// Square die: numRows rows of height H give die side numRows*H, and
	// capacity numRows * side * util must cover the total cell width.
	rows := opts.ForceRows
	if rows <= 0 {
		rows = int(math.Ceil(math.Sqrt(totalW / (lib.RowHeightUM * opts.UtilTarget))))
	}
	if rows < 1 {
		rows = 1
	}
	dieW := totalW / (float64(rows) * opts.UtilTarget)
	minW := lib.RowHeightUM // never narrower than one row is tall
	if dieW < minW {
		dieW = minW
	}

	p := &Placement{
		Design:      d,
		Lib:         lib,
		NumRows:     rows,
		DieWidthUM:  dieW,
		DieHeightUM: float64(rows) * lib.RowHeightUM,
		Rows:        make([][]netlist.GateID, rows),
		RowOf:       make([]int, n),
		X:           make([]float64, n),
		Y:           make([]float64, n),
		rowUsedUM:   make([]float64, rows),
		fanouts:     d.Fanouts(),
	}
	p.poOf = make([][]int, n)
	for i, po := range d.POs {
		if po.Sig.Kind == netlist.SigGate {
			p.poOf[po.Sig.Idx] = append(p.poOf[po.Sig.Idx], i)
		}
	}

	order := coneOrder(d)

	// Serpentine fill: capacity per row is dieW * util; odd rows are
	// reversed so consecutive gates in the order stay physically close
	// across row boundaries.
	capUM := dieW * opts.UtilTarget
	row := 0
	for _, g := range order {
		w := d.Gates[g].Cell.WidthUM(lib)
		if p.rowUsedUM[row]+w > capUM && row < rows-1 && len(p.Rows[row]) > 0 {
			row++
		}
		p.Rows[row] = append(p.Rows[row], g)
		p.rowUsedUM[row] += w
		p.RowOf[g] = row
	}
	for r := 1; r < rows; r += 2 {
		reverse(p.Rows[r])
	}

	p.spreadRows()
	for pass := 0; pass < opts.RefinePasses; pass++ {
		if p.refinePass() == 0 {
			break
		}
	}
	return p, nil
}

// coneOrder returns the gates ordered by depth-first traversal of the
// transitive fanin cones of the primary outputs (then of any unreached
// gates), which groups logically related cells.
func coneOrder(d *netlist.Design) []netlist.GateID {
	n := len(d.Gates)
	visited := make([]bool, n)
	order := make([]netlist.GateID, 0, n)

	var visit func(root netlist.GateID)
	visit = func(root netlist.GateID) {
		// Iterative post-order DFS; depth can reach the gate count.
		type frame struct {
			g   netlist.GateID
			pin int
		}
		stack := []frame{{g: root}}
		visited[root] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			ins := d.Gates[f.g].Ins
			advanced := false
			for f.pin < len(ins) {
				in := ins[f.pin]
				f.pin++
				if in.Kind == netlist.SigGate && !visited[in.Idx] {
					visited[in.Idx] = true
					stack = append(stack, frame{g: in.Idx})
					advanced = true
					break
				}
			}
			if !advanced && f.pin >= len(ins) {
				order = append(order, f.g)
				stack = stack[:len(stack)-1]
			}
		}
	}
	for _, po := range d.POs {
		if po.Sig.Kind == netlist.SigGate && !visited[po.Sig.Idx] {
			visit(po.Sig.Idx)
		}
	}
	for g := 0; g < n; g++ {
		if !visited[g] {
			visit(netlist.GateID(g))
		}
	}
	return order
}

func reverse(s []netlist.GateID) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// spreadRows assigns X/Y coordinates, distributing the free space of each
// row uniformly between cells.
func (p *Placement) spreadRows() {
	for r, gates := range p.Rows {
		free := p.DieWidthUM - p.rowUsedUM[r]
		gap := free / float64(len(gates)+1)
		if gap < 0 {
			gap = 0
		}
		x := gap
		for _, g := range gates {
			p.X[g] = x
			p.Y[g] = float64(r) * p.Lib.RowHeightUM
			x += p.Design.Gates[g].Cell.WidthUM(p.Lib) + gap
		}
	}
}

// refinePass swaps horizontally adjacent cells within rows when doing so
// shrinks the wirelength of their incident nets; it returns the number of
// swaps applied.
func (p *Placement) refinePass() int {
	swaps := 0
	for r := range p.Rows {
		gates := p.Rows[r]
		for i := 0; i+1 < len(gates); i++ {
			a, b := gates[i], gates[i+1]
			before := p.incidentHPWL(a) + p.incidentHPWL(b)
			gates[i], gates[i+1] = b, a
			p.spreadRow(r)
			after := p.incidentHPWL(a) + p.incidentHPWL(b)
			if after+1e-9 < before {
				swaps++
			} else {
				gates[i], gates[i+1] = a, b
				p.spreadRow(r)
			}
		}
	}
	return swaps
}

func (p *Placement) spreadRow(r int) {
	gates := p.Rows[r]
	free := p.DieWidthUM - p.rowUsedUM[r]
	gap := free / float64(len(gates)+1)
	if gap < 0 {
		gap = 0
	}
	x := gap
	for _, g := range gates {
		p.X[g] = x
		x += p.Design.Gates[g].Cell.WidthUM(p.Lib) + gap
	}
}

// incidentHPWL sums the half-perimeter wirelength of the nets touching g:
// its output net and each of its input nets.
func (p *Placement) incidentHPWL(g netlist.GateID) float64 {
	total := p.NetHPWL(g)
	for _, in := range p.Design.Gates[g].Ins {
		if in.Kind == netlist.SigGate {
			total += p.NetHPWL(in.Idx)
		}
	}
	return total
}

// GateCenter returns the centre coordinates of a gate.
func (p *Placement) GateCenter(g netlist.GateID) (x, y float64) {
	return p.X[g] + p.Design.Gates[g].Cell.WidthUM(p.Lib)/2,
		p.Y[g] + p.Lib.RowHeightUM/2
}

// Centers returns the centre coordinates of every gate as two parallel
// slices (structure-of-arrays), the layout per-gate spatial loops want:
// variation sampling evaluates correlated surfaces over all gate positions
// for every die, and the AoS GateCenter calls (a cell-width lookup and two
// divisions each) are pure per-die overhead. The slices are computed on
// first use, cached for the placement's lifetime, and shared — callers must
// not modify them. Safe for concurrent use; the placement coordinates are
// immutable after Place.
func (p *Placement) Centers() (xs, ys []float64) {
	p.centersOnce.Do(func() {
		n := len(p.Design.Gates)
		p.centerX = make([]float64, n)
		p.centerY = make([]float64, n)
		for g := 0; g < n; g++ {
			p.centerX[g], p.centerY[g] = p.GateCenter(netlist.GateID(g))
		}
	})
	return p.centerX, p.centerY
}

// NetHPWL returns the half-perimeter bounding-box wirelength of the net
// driven by gate g (driver, consumer pins, and the die edge for primary
// outputs).
func (p *Placement) NetHPWL(g netlist.GateID) float64 {
	x, y := p.GateCenter(g)
	minX, maxX, minY, maxY := x, x, y, y
	grow := func(gx, gy float64) {
		minX = math.Min(minX, gx)
		maxX = math.Max(maxX, gx)
		minY = math.Min(minY, gy)
		maxY = math.Max(maxY, gy)
	}
	for _, f := range p.fanouts[g] {
		fx, fy := p.GateCenter(f)
		grow(fx, fy)
	}
	if len(p.poOf[g]) > 0 {
		// POs pinned at the right die edge at the driver's height.
		grow(p.DieWidthUM, y)
	}
	return (maxX - minX) + (maxY - minY)
}

// TotalHPWL sums the wirelength over all gate-driven nets.
func (p *Placement) TotalHPWL() float64 {
	total := 0.0
	for g := range p.Design.Gates {
		total += p.NetHPWL(netlist.GateID(g))
	}
	return total
}

// RowUtilization returns the used fraction of row r.
func (p *Placement) RowUtilization(r int) float64 {
	return p.rowUsedUM[r] / p.DieWidthUM
}

// RowUsedUM returns the occupied width of row r in micrometres.
func (p *Placement) RowUsedUM(r int) float64 { return p.rowUsedUM[r] }

// Fanouts exposes the design's fanout lists computed at placement time.
func (p *Placement) Fanouts() [][]netlist.GateID { return p.fanouts }

// POsOf returns the primary-output indices driven by gate g.
func (p *Placement) POsOf(g netlist.GateID) []int { return p.poOf[g] }

// String implements fmt.Stringer.
func (p *Placement) String() string {
	return fmt.Sprintf("%s: %d rows, die %.1fx%.1fum, %d gates",
		p.Design.Name, p.NumRows, p.DieWidthUM, p.DieHeightUM, len(p.Design.Gates))
}
