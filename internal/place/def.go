package place

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/netlist"
)

// WriteDEF emits the placement in a minimal DEF (Design Exchange Format)
// subset: die area, rows, and placed components — enough for downstream
// tools (and humans) to inspect the physical result of the flow. Distances
// use the conventional 1000 database units per micrometre.
func (p *Placement) WriteDEF(w io.Writer) error {
	const dbu = 1000.0
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "VERSION 5.8 ;")
	fmt.Fprintf(bw, "DESIGN %s ;\n", p.Design.Name)
	fmt.Fprintf(bw, "UNITS DISTANCE MICRONS %d ;\n", int(dbu))
	fmt.Fprintf(bw, "DIEAREA ( 0 0 ) ( %d %d ) ;\n",
		int(p.DieWidthUM*dbu), int(p.DieHeightUM*dbu))

	siteW := int(p.Lib.SiteWidthUM * dbu)
	for r := 0; r < p.NumRows; r++ {
		orient := "N"
		if r%2 == 1 {
			orient = "FS" // alternating row flip, standard-cell style
		}
		sites := int(p.DieWidthUM / p.Lib.SiteWidthUM)
		fmt.Fprintf(bw, "ROW row_%d core %d %d %s DO %d BY 1 STEP %d 0 ;\n",
			r, 0, int(float64(r)*p.Lib.RowHeightUM*dbu), orient, sites, siteW)
	}

	fmt.Fprintf(bw, "COMPONENTS %d ;\n", len(p.Design.Gates))
	for g := range p.Design.Gates {
		id := netlist.GateID(g)
		orient := "N"
		if p.RowOf[g]%2 == 1 {
			orient = "FS"
		}
		fmt.Fprintf(bw, "- u%d %s + PLACED ( %d %d ) %s ;\n",
			g, p.Design.Gates[g].Cell.Name,
			int(p.X[id]*dbu), int(p.Y[id]*dbu), orient)
	}
	fmt.Fprintln(bw, "END COMPONENTS")
	fmt.Fprintln(bw, "END DESIGN")
	return bw.Flush()
}
