package place

import (
	"strings"
	"testing"
)

func TestWriteDEF(t *testing.T) {
	p := placed(t, "c1355")
	var sb strings.Builder
	if err := p.WriteDEF(&sb); err != nil {
		t.Fatal(err)
	}
	def := sb.String()
	for _, want := range []string{
		"VERSION 5.8", "DESIGN c1355", "UNITS DISTANCE MICRONS 1000",
		"DIEAREA", "ROW row_0", "COMPONENTS", "PLACED", "END DESIGN",
	} {
		if !strings.Contains(def, want) {
			t.Errorf("DEF missing %q", want)
		}
	}
	if got := strings.Count(def, "+ PLACED"); got != len(p.Design.Gates) {
		t.Errorf("placed %d components for %d gates", got, len(p.Design.Gates))
	}
	if got := strings.Count(def, "\nROW "); got != p.NumRows {
		t.Errorf("emitted %d rows for %d", got, p.NumRows)
	}
}
