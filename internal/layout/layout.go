// Package layout models the physical implementation of row-clustered FBB
// described in the paper's section 3.3 and shown in its Figures 3 and 6:
//
//   - bias voltages are routed as vertical pairs (vbsn, vbsp) on the top
//     metal layer, one pair per non-NBB cluster, limited to two pairs;
//   - each biased row receives body-bias contact cells every ~50um (two
//     cells per window: one NMOS, one PMOS contact), consuming row space and
//     raising utilization by up to ~6%;
//   - adjacent rows assigned to different clusters need well separation,
//     the only source of die-area increase (kept below 5% in the paper).
package layout

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/place"
)

// Options parameterize the layout rules.
type Options struct {
	// ContactPitchUM is the maximum distance between body-bias contact
	// cells on a biased row (50um in the paper's technology).
	ContactPitchUM float64
	// ContactCellWidthUM is the width of one contact cell; two are
	// placed per pitch window (NMOS and PMOS contacts).
	ContactCellWidthUM float64
	// WellSepUM is the extra spacing between adjacent rows of different
	// clusters. The default 0.2um reflects the paper's 45nm SOI process
	// (Figure 1), where body wells are trench-isolated and differently
	// biased rows need only a minimal guard; bulk triple-well processes
	// would need more.
	WellSepUM float64
	// MaxBiasPairs is the routing limit on distributed bias pairs
	// (2 in the paper, hence at most 3 clusters including NBB).
	MaxBiasPairs int
}

func (o *Options) setDefaults() {
	if o.ContactPitchUM <= 0 {
		o.ContactPitchUM = 50
	}
	if o.ContactCellWidthUM <= 0 {
		o.ContactCellWidthUM = 1.5
	}
	if o.WellSepUM <= 0 {
		o.WellSepUM = 0.2
	}
	if o.MaxBiasPairs <= 0 {
		o.MaxBiasPairs = 2
	}
}

// Report is the physical-implementation assessment of an assignment.
type Report struct {
	// VbsLevels are the distinct non-NBB levels used (each needs a
	// routed pair); UsesNBB notes whether a no-bias cluster exists.
	VbsLevels []int
	UsesNBB   bool

	// ContactCellsPerRow counts inserted contact cells per row (zero on
	// NBB rows, whose well taps tie to the rails as in the base layout).
	ContactCellsPerRow []int
	// UtilBefore/UtilAfter are per-row utilizations without/with contact
	// cells; MaxUtilIncrease is the worst per-row increase (paper: ~6%).
	UtilBefore, UtilAfter []float64
	MaxUtilIncrease       float64
	// RowsOverflowed counts rows whose utilization would exceed 100%.
	RowsOverflowed int

	// WellSepBoundaries counts adjacent row pairs in different clusters.
	WellSepBoundaries int
	// BaseAreaUM2 and AreaUM2 are the die areas before/after well
	// separation; AreaOverheadPct is the increase (paper: < 5%).
	BaseAreaUM2, AreaUM2 float64
	AreaOverheadPct      float64

	// BiasRailTracks is the number of vertical top-metal tracks used
	// (two per pair).
	BiasRailTracks int
}

// Apply evaluates the layout implementation of a row-to-level assignment.
func Apply(pl *place.Placement, assign []int, opts Options) (*Report, error) {
	opts.setDefaults()
	if len(assign) != pl.NumRows {
		return nil, fmt.Errorf("layout: assignment length %d, want %d rows", len(assign), pl.NumRows)
	}

	r := &Report{
		ContactCellsPerRow: make([]int, pl.NumRows),
		UtilBefore:         make([]float64, pl.NumRows),
		UtilAfter:          make([]float64, pl.NumRows),
	}
	levelSet := map[int]struct{}{}
	for _, j := range assign {
		if j == 0 {
			r.UsesNBB = true
			continue
		}
		levelSet[j] = struct{}{}
	}
	for j := range levelSet {
		r.VbsLevels = append(r.VbsLevels, j)
	}
	sortInts(r.VbsLevels)
	if len(r.VbsLevels) > opts.MaxBiasPairs {
		return nil, fmt.Errorf("layout: %d bias pairs exceed the routable %d "+
			"(more contact cells per row would force a die-area increase)",
			len(r.VbsLevels), opts.MaxBiasPairs)
	}
	r.BiasRailTracks = 2 * len(r.VbsLevels)

	// Contact-cell insertion on biased rows.
	for row := 0; row < pl.NumRows; row++ {
		r.UtilBefore[row] = pl.RowUtilization(row)
		r.UtilAfter[row] = r.UtilBefore[row]
		if assign[row] == 0 {
			continue
		}
		windows := int(math.Ceil(pl.DieWidthUM / opts.ContactPitchUM))
		if windows < 1 {
			windows = 1
		}
		cells := 2 * windows // one NMOS + one PMOS contact per window
		r.ContactCellsPerRow[row] = cells
		extra := float64(cells) * opts.ContactCellWidthUM / pl.DieWidthUM
		r.UtilAfter[row] += extra
		if inc := r.UtilAfter[row] - r.UtilBefore[row]; inc > r.MaxUtilIncrease {
			r.MaxUtilIncrease = inc
		}
		if r.UtilAfter[row] > 1.0 {
			r.RowsOverflowed++
		}
	}

	// Well separation between adjacent different-cluster rows.
	for row := 0; row+1 < pl.NumRows; row++ {
		if assign[row] != assign[row+1] {
			r.WellSepBoundaries++
		}
	}
	r.BaseAreaUM2 = pl.DieWidthUM * pl.DieHeightUM
	r.AreaUM2 = pl.DieWidthUM * (pl.DieHeightUM + float64(r.WellSepBoundaries)*opts.WellSepUM)
	r.AreaOverheadPct = 100 * (r.AreaUM2 - r.BaseAreaUM2) / r.BaseAreaUM2
	return r, nil
}

// Feasible reports whether the implementation fits without enlarging rows.
func (r *Report) Feasible() bool { return r.RowsOverflowed == 0 }

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ErrNoPlacement is returned by renderers on nil input.
var ErrNoPlacement = errors.New("layout: nil placement")
