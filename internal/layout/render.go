package layout

import (
	"fmt"
	"strings"

	"repro/internal/place"
)

// RenderASCII draws the clustered layout in the style of the paper's
// Figure 3: one line per row showing its cluster, bias voltage, utilization
// and contact cells, with well-separation markers between rows of different
// clusters. Bias rails run vertically through the die centre as in Figure 6.
func RenderASCII(pl *place.Placement, assign []int, rep *Report) string {
	var sb strings.Builder
	grid := pl.Lib.Grid
	fmt.Fprintf(&sb, "%s: %d rows, die %.0fx%.0fum, %d bias pair(s) on top metal\n",
		pl.Design.Name, pl.NumRows, pl.DieWidthUM, pl.DieHeightUM, len(rep.VbsLevels))

	symbols := map[int]byte{0: '.'}
	for i, j := range rep.VbsLevels {
		symbols[j] = byte('A' + i)
	}
	const width = 48
	railCol := width / 2
	for row := pl.NumRows - 1; row >= 0; row-- {
		if row+1 < pl.NumRows && assign[row] != assign[row+1] {
			sep := strings.Repeat("~", width)
			fmt.Fprintf(&sb, "      %s  well separation\n", sep)
		}
		sym := symbols[assign[row]]
		used := int(rep.UtilAfter[row] * float64(width))
		if used > width {
			used = width
		}
		line := []byte(strings.Repeat(string(sym), used) + strings.Repeat(" ", width-used))
		// Bias rails through the centre (Figure 6).
		for t := 0; t < rep.BiasRailTracks; t++ {
			col := railCol - rep.BiasRailTracks + 2*t + 1
			if col >= 0 && col < width {
				line[col] = '|'
			}
		}
		fmt.Fprintf(&sb, "r%02d %c [%s] vbs=%.2fV util=%2.0f%% contacts=%d\n",
			row, sym, line, grid.Voltage(assign[row]), rep.UtilAfter[row]*100,
			rep.ContactCellsPerRow[row])
	}
	fmt.Fprintf(&sb, "legend: . = no body bias")
	for i, j := range rep.VbsLevels {
		fmt.Fprintf(&sb, ", %c = vbs%d (%.2fV)", byte('A'+i), i+1, grid.Voltage(j))
	}
	fmt.Fprintf(&sb, "\nwell-separation boundaries: %d, area overhead: %.2f%%\n",
		rep.WellSepBoundaries, rep.AreaOverheadPct)
	return sb.String()
}

// clusterColors are the SVG fill colours per cluster index (NBB first).
var clusterColors = []string{"#d7dbdd", "#f5b041", "#e74c3c", "#8e44ad"}

// RenderSVG draws the placed-and-routed view of the paper's Figure 6: rows
// coloured by cluster, contact cells as dark ticks, and the bias-pair rails
// routed vertically through the centre of the die on the top metal layer.
func RenderSVG(pl *place.Placement, assign []int, rep *Report) string {
	const scale = 4.0
	w := pl.DieWidthUM * scale
	h := pl.DieHeightUM * scale
	rowH := pl.Lib.RowHeightUM * scale

	colorOf := map[int]string{0: clusterColors[0]}
	for i, j := range rep.VbsLevels {
		colorOf[j] = clusterColors[1+i%3]
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w+120, h+40, w+120, h+40)
	fmt.Fprintf(&sb, `<rect x="0" y="0" width="%.0f" height="%.0f" fill="#1b2631"/>`+"\n", w+120, h+40)

	// Rows, bottom row at the bottom of the image.
	for row := 0; row < pl.NumRows; row++ {
		y := h - float64(row+1)*rowH + 20
		fmt.Fprintf(&sb, `<rect x="20" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#17202a" stroke-width="0.5"/>`+"\n",
			y, w, rowH*0.92, colorOf[assign[row]])
		// Cells as subtle ticks at their x positions.
		for _, g := range pl.Rows[row] {
			gw := pl.Design.Gates[g].Cell.WidthUM(pl.Lib) * scale
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="black" fill-opacity="0.12"/>`+"\n",
				20+pl.X[g]*scale, y+rowH*0.1, gw, rowH*0.72)
		}
		// Contact cells, evenly spread.
		n := rep.ContactCellsPerRow[row]
		for k := 0; k < n; k++ {
			x := 20 + (float64(k)+0.5)*w/float64(n)
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="3" height="%.1f" fill="#145a32"/>`+"\n",
				x, y, rowH*0.92)
		}
	}

	// Bias rails through the centre (two tracks per pair).
	for t := 0; t < rep.BiasRailTracks; t++ {
		x := 20 + w/2 + float64(2*t-rep.BiasRailTracks)*6
		fmt.Fprintf(&sb, `<rect x="%.1f" y="10" width="3.5" height="%.1f" fill="#3498db" fill-opacity="0.85"/>`+"\n",
			x, h+20)
	}

	// Legend.
	grid := pl.Lib.Grid
	ly := 24.0
	fmt.Fprintf(&sb, `<text x="%.0f" y="%.0f" fill="white" font-size="11" font-family="monospace">NBB</text>`+"\n", w+46, ly)
	fmt.Fprintf(&sb, `<rect x="%.0f" y="%.0f" width="14" height="10" fill="%s"/>`+"\n", w+26, ly-9, clusterColors[0])
	for _, j := range rep.VbsLevels {
		ly += 18
		fmt.Fprintf(&sb, `<rect x="%.0f" y="%.0f" width="14" height="10" fill="%s"/>`+"\n", w+26, ly-9, colorOf[j])
		fmt.Fprintf(&sb, `<text x="%.0f" y="%.0f" fill="white" font-size="11" font-family="monospace">%.2fV</text>`+"\n", w+46, ly, grid.Voltage(j))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}
