package layout

import (
	"strings"
	"testing"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/place"
	"repro/internal/sta"
)

type fixture struct {
	pl     *place.Placement
	assign []int
}

func solved(t *testing.T, name string, beta float64, c int) fixture {
	t.Helper()
	l := cell.Default()
	d, err := gen.Build(name, l)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(d, l, place.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tm, err := sta.Analyze(pl, sta.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.BuildProblem(pl, tm, core.Options{Beta: beta, MaxClusters: c})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := p.SolveHeuristic()
	if err != nil {
		t.Fatal(err)
	}
	return fixture{pl: pl, assign: sol.Assign}
}

func TestContactCellUtilizationWithinPaperBound(t *testing.T) {
	f := solved(t, "c5315", 0.05, 3)
	rep, err := Apply(f.pl, f.assign, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "a maximum 6% increase in utilization on each row when we
	// have two body bias contact cells every 50um". On a die narrower
	// than a few pitch windows the ceiling quantization adds up to one
	// extra pair, hence the 3um/dieWidth allowance.
	bound := 0.06 + 3.0/f.pl.DieWidthUM + 1e-9
	if rep.MaxUtilIncrease > bound {
		t.Errorf("utilization increase %.1f%% exceeds the paper bound %.1f%%",
			rep.MaxUtilIncrease*100, bound*100)
	}
	if rep.MaxUtilIncrease <= 0 {
		t.Error("biased rows should show a utilization increase")
	}
	if !rep.Feasible() {
		t.Errorf("%d rows overflow; spatial slack should absorb contact cells",
			rep.RowsOverflowed)
	}
}

func TestAreaOverheadBelowFivePercent(t *testing.T) {
	// Paper: "the increase in the area due to well separation ... was
	// always below 5% for all the cases". Our connectivity-driven placer
	// spreads critical logic slightly more than the paper's timing-driven
	// commercial flow, so the envelope here is mean < 5%, worst < 6%
	// (the one excursion, dual-ALU at beta=5%, is discussed in
	// EXPERIMENTS.md).
	sum, worst := 0.0, 0.0
	cases := []struct {
		name string
		beta float64
	}{
		{"c1355", 0.05}, {"c1355", 0.10},
		{"c5315", 0.05}, {"c7552", 0.10}, {"c6288", 0.05},
	}
	for _, tc := range cases {
		f := solved(t, tc.name, tc.beta, 3)
		rep, err := Apply(f.pl, f.assign, Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-8s beta=%g: boundaries=%d area overhead=%.2f%%",
			tc.name, tc.beta, rep.WellSepBoundaries, rep.AreaOverheadPct)
		sum += rep.AreaOverheadPct
		if rep.AreaOverheadPct > worst {
			worst = rep.AreaOverheadPct
		}
	}
	if mean := sum / float64(len(cases)); mean >= 5 {
		t.Errorf("mean area overhead %.2f%% >= 5%%", mean)
	}
	if worst >= 6 {
		t.Errorf("worst area overhead %.2f%% >= 6%%", worst)
	}
}

func TestNBBRowsGetNoContacts(t *testing.T) {
	f := solved(t, "c1355", 0.05, 3)
	rep, err := Apply(f.pl, f.assign, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for row, j := range f.assign {
		if j == 0 && rep.ContactCellsPerRow[row] != 0 {
			t.Errorf("NBB row %d got %d contact cells", row, rep.ContactCellsPerRow[row])
		}
		if j != 0 && rep.ContactCellsPerRow[row] == 0 {
			t.Errorf("biased row %d got no contact cells", row)
		}
	}
}

func TestTooManyPairsRejected(t *testing.T) {
	f := solved(t, "c1355", 0.05, 3)
	// Fabricate an assignment with 3 distinct non-NBB levels.
	bad := append([]int(nil), f.assign...)
	if len(bad) < 3 {
		t.Skip("too few rows")
	}
	bad[0], bad[1], bad[2] = 1, 2, 3
	if _, err := Apply(f.pl, bad, Options{}); err == nil {
		t.Error("three bias pairs accepted with MaxBiasPairs=2")
	}
	// But allowed when the routing budget is raised.
	if _, err := Apply(f.pl, bad, Options{MaxBiasPairs: 4}); err != nil {
		t.Errorf("four-pair budget rejected: %v", err)
	}
}

func TestWellSeparationCount(t *testing.T) {
	f := solved(t, "c1355", 0.05, 2)
	rep, err := Apply(f.pl, f.assign, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i+1 < len(f.assign); i++ {
		if f.assign[i] != f.assign[i+1] {
			want++
		}
	}
	if rep.WellSepBoundaries != want {
		t.Errorf("boundaries = %d, want %d", rep.WellSepBoundaries, want)
	}
}

func TestUniformAssignmentNoOverhead(t *testing.T) {
	f := solved(t, "c1355", 0.05, 3)
	uniform := make([]int, f.pl.NumRows) // all NBB
	rep, err := Apply(f.pl, uniform, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AreaOverheadPct != 0 || rep.WellSepBoundaries != 0 || rep.MaxUtilIncrease != 0 {
		t.Errorf("all-NBB layout shows overhead: %+v", rep)
	}
}

func TestRenderASCII(t *testing.T) {
	f := solved(t, "c1355", 0.05, 3)
	rep, err := Apply(f.pl, f.assign, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := RenderASCII(f.pl, f.assign, rep)
	if !strings.Contains(s, "well separation") && rep.WellSepBoundaries > 0 {
		t.Error("ASCII render missing well separation markers")
	}
	if !strings.Contains(s, "legend") {
		t.Error("ASCII render missing legend")
	}
	lines := strings.Count(s, "\n")
	if lines < f.pl.NumRows {
		t.Errorf("ASCII render has %d lines for %d rows", lines, f.pl.NumRows)
	}
}

func TestRenderSVG(t *testing.T) {
	f := solved(t, "c5315", 0.05, 3)
	rep, err := Apply(f.pl, f.assign, Options{})
	if err != nil {
		t.Fatal(err)
	}
	svg := RenderSVG(f.pl, f.assign, rep)
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Count(svg, "<rect") < f.pl.NumRows {
		t.Error("SVG missing row rectangles")
	}
	if rep.BiasRailTracks > 0 && !strings.Contains(svg, "#3498db") {
		t.Error("SVG missing bias rails")
	}
}

func TestAssignmentLengthValidated(t *testing.T) {
	f := solved(t, "c1355", 0.05, 3)
	if _, err := Apply(f.pl, []int{0, 1}, Options{}); err == nil {
		t.Error("short assignment accepted")
	}
}
